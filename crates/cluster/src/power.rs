//! The power model behind the simulated RAPL counters.
//!
//! Package power is modelled as a fixed uncore component, a per-core idle
//! floor, and per-core dynamic increments that depend on what the core is
//! doing; DRAM power is a static rail plus an energy-per-byte dynamic term.
//! Energy is the integral of those powers over the activity recorded in the
//! [`Ledger`].
//!
//! Calibration targets (the paper's qualitative findings that must emerge):
//!
//! * an *idle* socket draws 40–50 % of a fully loaded one (§5.3 reports the
//!   second socket "50–60 % lower" than the first);
//! * a loaded Skylake 8160 socket stays near its 150 W TDP;
//! * DRAM power is workload-sensitive enough that IMe's larger working set
//!   (2n² table vs n² matrix) produces a visible DRAM gap (12–42 %).

use crate::jitter;
use crate::ledger::{ActivityKind, Ledger};
use serde::{Deserialize, Serialize};

/// Power/energy coefficients for one node type.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Package power that exists as soon as the socket is powered (uncore,
    /// mesh, LLC, memory controllers), watts.
    pub pkg_uncore_w: f64,
    /// Per-core power when idle/parked, watts.
    pub core_idle_w: f64,
    /// Additional per-core power while executing floating-point work, watts.
    pub core_compute_w: f64,
    /// Additional per-core power while progressing communication (spinning
    /// in MPI, memcpy), watts; lower than compute but well above idle.
    pub core_comm_w: f64,
    /// Static power of one DRAM domain (one socket's DIMMs), watts.
    pub dram_static_w: f64,
    /// Dynamic DRAM energy per byte moved, joules/byte.
    pub dram_energy_per_byte_j: f64,
    /// Relative sigma of per-node performance variation.
    pub perf_sigma: f64,
    /// Relative sigma of per-node power variation.
    pub power_sigma: f64,
    /// DVFS frequency scale in (0, 1] applied by a RAPL power cap
    /// (`1.0` = uncapped). Compute slows by `1/freq_scale`; dynamic core
    /// power scales by `freq_scale³` (frequency × voltage²), so energy per
    /// flop drops quadratically — the trade-off the paper's future-work
    /// power-cap study targets. Produced by [`PowerModel::with_power_cap`].
    #[serde(default = "one")]
    pub freq_scale: f64,
}

fn one() -> f64 {
    1.0
}

impl PowerModel {
    /// Calibrated for the Marconi A3 Xeon 8160 node (see module docs).
    /// Loaded socket: 42 + 24·(1.05 + 3.1) ≈ 141.6 W (≈ TDP);
    /// idle socket: 42 + 24·1.05 ≈ 67.2 W ≈ 47 % of loaded.
    pub fn marconi_a3() -> Self {
        Self {
            pkg_uncore_w: 42.0,
            core_idle_w: 1.05,
            core_compute_w: 3.10,
            core_comm_w: 1.80,
            dram_static_w: 4.5,
            dram_energy_per_byte_j: 150.0e-12,
            perf_sigma: 0.03,
            power_sigma: 0.04,
            freq_scale: 1.0,
        }
    }

    /// Apply a RAPL package power cap of `cap_w` watts per socket,
    /// assuming `active_cores` cores busy per socket (the worst-case draw
    /// the governor must fit under the cap). Returns a model whose
    /// `freq_scale` makes a fully-busy socket's power meet the cap:
    /// dynamic core power scales with `f³`, so
    /// `uncore + cores·idle + active·compute·f³ = cap`. Caps at or above
    /// the uncapped draw return the model unchanged; caps below the static
    /// floor clamp to the minimum frequency (0.2).
    pub fn with_power_cap(
        &self,
        node: &crate::spec::NodeSpec,
        active_cores: usize,
        cap_w: f64,
    ) -> PowerModel {
        let cps = node.cpu.cores_per_socket as f64;
        let floor = self.pkg_uncore_w + cps * self.core_idle_w;
        let full_dynamic = active_cores as f64 * self.core_compute_w;
        let f = if full_dynamic <= 0.0 {
            1.0
        } else {
            ((cap_w - floor) / full_dynamic).max(0.0).cbrt()
        };
        PowerModel {
            freq_scale: f.clamp(0.2, 1.0),
            ..self.clone()
        }
    }

    /// Instantaneous power of a fully busy socket under this model
    /// (respecting any cap).
    pub fn loaded_socket_power_w(&self, node: &crate::spec::NodeSpec) -> f64 {
        let cps = node.cpu.cores_per_socket as f64;
        self.pkg_uncore_w
            + cps * self.core_idle_w
            + cps * self.core_compute_w * self.freq_scale.powi(3)
    }

    /// Noise-free variant for deterministic unit tests.
    pub fn deterministic() -> Self {
        Self {
            perf_sigma: 0.0,
            power_sigma: 0.0,
            ..Self::marconi_a3()
        }
    }

    /// Marconi-calibrated model rescaled to a node's socket size: uncore
    /// power scales with the die's core count so scaled-down test nodes
    /// keep the same loaded-vs-idle socket ratio as the 24-core part. Keeps
    /// the qualitative findings (idle socket ≈ half a loaded one)
    /// size-independent.
    pub fn scaled_for(node: &crate::spec::NodeSpec) -> Self {
        let base = Self::marconi_a3();
        let scale = node.cpu.cores_per_socket as f64 / 24.0;
        Self {
            pkg_uncore_w: base.pkg_uncore_w * scale,
            dram_static_w: base.dram_static_w * scale,
            ..base
        }
    }

    /// Noise-free [`PowerModel::scaled_for`].
    pub fn scaled_deterministic(node: &crate::spec::NodeSpec) -> Self {
        Self {
            perf_sigma: 0.0,
            power_sigma: 0.0,
            ..Self::scaled_for(node)
        }
    }

    /// Instantaneous package power for a socket with `cores` total cores of
    /// which `computing` are executing flops and `comming` are in
    /// communication.
    pub fn pkg_power_w(&self, cores: usize, computing: usize, comming: usize) -> f64 {
        debug_assert!(computing + comming <= cores);
        let f3 = self.freq_scale.powi(3);
        self.pkg_uncore_w
            + cores as f64 * self.core_idle_w
            + computing as f64 * self.core_compute_w * f3
            + comming as f64 * self.core_comm_w * f3
    }

    /// Energy consumed by package `(node, socket)` from virtual time 0 to
    /// `t`, in joules, for run `seed`.
    pub fn pkg_energy_j(
        &self,
        ledger: &Ledger,
        node: usize,
        socket: usize,
        t: f64,
        seed: u64,
    ) -> f64 {
        let spec = ledger.node_spec();
        let cores = spec.cpu.cores_per_socket as f64;
        let base = (self.pkg_uncore_w + cores * self.core_idle_w) * t;
        let compute_s = ledger.socket_busy_until(node, socket, ActivityKind::Compute, t);
        let comm_s = ledger.socket_busy_until(node, socket, ActivityKind::Comm, t);
        let f3 = self.freq_scale.powi(3);
        let dynamic = compute_s * self.core_compute_w * f3 + comm_s * self.core_comm_w * f3;
        (base + dynamic) * jitter::node_power(seed, node, self.power_sigma)
    }

    /// Energy consumed by the *core* (PP0) domain of `(node, socket)` up to
    /// `t`: the package energy minus the uncore component — what the
    /// `PP0_ENERGY_STATUS` MSR reports.
    pub fn pp0_energy_j(
        &self,
        ledger: &Ledger,
        node: usize,
        socket: usize,
        t: f64,
        seed: u64,
    ) -> f64 {
        let spec = ledger.node_spec();
        let cores = spec.cpu.cores_per_socket as f64;
        let base = cores * self.core_idle_w * t;
        let compute_s = ledger.socket_busy_until(node, socket, ActivityKind::Compute, t);
        let comm_s = ledger.socket_busy_until(node, socket, ActivityKind::Comm, t);
        let f3 = self.freq_scale.powi(3);
        let dynamic = compute_s * self.core_compute_w * f3 + comm_s * self.core_comm_w * f3;
        (base + dynamic) * jitter::node_power(seed, node, self.power_sigma)
    }

    /// Energy consumed by the DRAM domain of `(node, socket)` up to `t`.
    pub fn dram_energy_j(
        &self,
        ledger: &Ledger,
        node: usize,
        socket: usize,
        t: f64,
        seed: u64,
    ) -> f64 {
        let stat = self.dram_static_w * t;
        let dynamic = ledger.dram_bytes_until(node, socket, t) as f64 * self.dram_energy_per_byte_j;
        (stat + dynamic) * jitter::node_power(seed, node, self.power_sigma)
    }

    /// Whole-node energy (all packages + all DRAM domains) up to `t`.
    pub fn node_energy_j(&self, ledger: &Ledger, node: usize, t: f64, seed: u64) -> f64 {
        let sockets = ledger.node_spec().sockets;
        (0..sockets)
            .map(|s| {
                self.pkg_energy_j(ledger, node, s, t, seed)
                    + self.dram_energy_j(ledger, node, s, t, seed)
            })
            .sum()
    }

    /// Per-node performance multiplier (applied by the MPI engine when
    /// charging compute time).
    pub fn perf_multiplier(&self, seed: u64, node: usize) -> f64 {
        jitter::node_perf(seed, node, self.perf_sigma) * self.freq_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{ActivityKind, Interval, Ledger};
    use crate::spec::NodeSpec;
    use crate::topology::CoreId;

    #[test]
    fn loaded_socket_near_tdp_idle_socket_around_half() {
        let pm = PowerModel::marconi_a3();
        let loaded = pm.pkg_power_w(24, 24, 0);
        let idle = pm.pkg_power_w(24, 0, 0);
        assert!(loaded > 130.0 && loaded < 155.0, "loaded = {loaded}");
        let ratio = idle / loaded;
        assert!(
            (0.40..=0.55).contains(&ratio),
            "idle/loaded = {ratio:.2}, paper expects the idle socket 50-60% lower"
        );
    }

    #[test]
    fn energy_is_power_times_time_for_constant_activity() {
        let pm = PowerModel::deterministic();
        let spec = NodeSpec::marconi_a3();
        let ledger = Ledger::new(spec.clone(), 1);
        // All 24 cores of socket 0 compute for exactly 2 seconds.
        for c in 0..24 {
            ledger.record(
                CoreId::new(0, 0, c),
                Interval {
                    start: 0.0,
                    end: 2.0,
                    kind: ActivityKind::Compute,
                    flops: 0,
                },
            );
        }
        let e = pm.pkg_energy_j(&ledger, 0, 0, 2.0, 0);
        let expected = pm.pkg_power_w(24, 24, 0) * 2.0;
        assert!((e - expected).abs() < 1e-9, "{e} vs {expected}");
    }

    #[test]
    fn idle_energy_grows_with_time_even_without_activity() {
        let pm = PowerModel::deterministic();
        let ledger = Ledger::new(NodeSpec::marconi_a3(), 1);
        let e1 = pm.pkg_energy_j(&ledger, 0, 1, 1.0, 0);
        let e2 = pm.pkg_energy_j(&ledger, 0, 1, 2.0, 0);
        assert!(e2 > e1 && e1 > 0.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
    }

    #[test]
    fn comm_draws_less_than_compute() {
        let pm = PowerModel::deterministic();
        let spec = NodeSpec::marconi_a3();
        let mk = |kind| {
            let ledger = Ledger::new(spec.clone(), 1);
            ledger.record(
                CoreId::new(0, 0, 0),
                Interval {
                    start: 0.0,
                    end: 1.0,
                    kind,
                    flops: 0,
                },
            );
            pm.pkg_energy_j(&ledger, 0, 0, 1.0, 0)
        };
        assert!(mk(ActivityKind::Compute) > mk(ActivityKind::Comm));
    }

    #[test]
    fn dram_energy_includes_traffic() {
        let pm = PowerModel::deterministic();
        let ledger = Ledger::new(NodeSpec::marconi_a3(), 1);
        let static_only = pm.dram_energy_j(&ledger, 0, 0, 1.0, 0);
        ledger.record_dram(0, 0, 0.5, 1_000_000_000); // 1 GB
        let with_traffic = pm.dram_energy_j(&ledger, 0, 0, 1.0, 0);
        assert!((static_only - pm.dram_static_w).abs() < 1e-12);
        assert!((with_traffic - static_only - 1.0e9 * pm.dram_energy_per_byte_j).abs() < 1e-9);
    }

    #[test]
    fn node_energy_sums_domains() {
        let pm = PowerModel::deterministic();
        let ledger = Ledger::new(NodeSpec::marconi_a3(), 2);
        let n = pm.node_energy_j(&ledger, 1, 3.0, 0);
        let by_hand: f64 = (0..2)
            .map(|s| {
                pm.pkg_energy_j(&ledger, 1, s, 3.0, 0) + pm.dram_energy_j(&ledger, 1, s, 3.0, 0)
            })
            .sum();
        assert_eq!(n, by_hand);
    }

    #[test]
    fn jitter_perturbs_but_deterministically() {
        let pm = PowerModel::marconi_a3();
        let ledger = Ledger::new(NodeSpec::marconi_a3(), 2);
        let a = pm.pkg_energy_j(&ledger, 0, 0, 1.0, 1);
        let b = pm.pkg_energy_j(&ledger, 0, 0, 1.0, 1);
        let c = pm.pkg_energy_j(&ledger, 0, 0, 1.0, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // within ±20 %
        let nominal = pm.pkg_power_w(24, 0, 0);
        assert!((a / nominal - 1.0).abs() < 0.2);
    }
}
