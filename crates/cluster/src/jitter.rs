//! Deterministic node-to-node variability.
//!
//! The paper (§5.3) attributes part of its measurement scatter to "variations
//! in the processors used for each execution". We model that explicitly: a
//! per-(seed, node) multiplier drawn from a narrow bell-shaped distribution,
//! applied to both core throughput and power draw. Using a hash-based
//! generator keeps this crate dependency-free and every run reproducible.

/// SplitMix64 — tiny, high-quality 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Uniform f64 in [0, 1) from a hash state.
fn unit(z: u64) -> f64 {
    (splitmix64(z) >> 11) as f64 / (1u64 << 53) as f64
}

/// Approximately normal multiplier `N(1, sigma)` (Irwin–Hall with 4 draws,
/// clamped to ±3σ). `sigma = 0` returns exactly 1.
pub fn gaussian_multiplier(seed: u64, stream: u64, sigma: f64) -> f64 {
    if sigma == 0.0 {
        return 1.0;
    }
    let base = splitmix64(seed ^ stream.wrapping_mul(0x9e3779b97f4a7c15));
    let sum: f64 = (0..4).map(|i| unit(base.wrapping_add(i))).sum();
    // Irwin-Hall(4): mean 2, var 1/3  →  standardise.
    let std_normal = (sum - 2.0) / (1.0f64 / 3.0).sqrt();
    let clamped = std_normal.clamp(-3.0, 3.0);
    1.0 + sigma * clamped
}

/// Per-node performance multiplier for a given run seed.
pub fn node_perf(seed: u64, node: usize, sigma: f64) -> f64 {
    gaussian_multiplier(seed, 0x5045_5246 ^ node as u64, sigma)
}

/// Per-node power multiplier for a given run seed.
pub fn node_power(seed: u64, node: usize, sigma: f64) -> f64 {
    gaussian_multiplier(seed, 0x504f_5752 ^ node as u64, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(node_perf(7, 3, 0.05), node_perf(7, 3, 0.05));
        assert_ne!(node_perf(7, 3, 0.05), node_perf(8, 3, 0.05));
        assert_ne!(node_perf(7, 3, 0.05), node_perf(7, 4, 0.05));
    }

    #[test]
    fn sigma_zero_is_identity() {
        assert_eq!(node_perf(1, 1, 0.0), 1.0);
    }

    #[test]
    fn bounded_and_centred() {
        let sigma = 0.05;
        let vals: Vec<f64> = (0..2000).map(|n| node_perf(42, n, sigma)).collect();
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        for v in &vals {
            assert!(*v > 1.0 - 3.5 * sigma && *v < 1.0 + 3.5 * sigma);
        }
    }

    #[test]
    fn perf_and_power_streams_differ() {
        assert_ne!(node_perf(5, 0, 0.05), node_power(5, 0, 0.05));
    }
}
