//! Hardware specifications for the simulated cluster.

use serde::{Deserialize, Serialize};

/// A CPU model (one socket's worth of cores).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CpuSpec {
    /// Marketing name, e.g. `"Intel Xeon Platinum 8160"`.
    pub name: String,
    /// CPUID display family (6 for all modern Intel).
    pub family: u32,
    /// CPUID display model (0x55 for Skylake-SP); RAPL unit decoding keys
    /// off this, exactly as real RAPL readers must.
    pub model: u32,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Nominal frequency in GHz.
    pub freq_ghz: f64,
    /// Sustained double-precision rate per core in flop/s that the virtual
    /// clock charges against (peak × a realistic dgemm efficiency).
    pub sustained_flops_per_core: f64,
    /// Thermal design power per socket in watts (sanity bound for the power
    /// model).
    pub tdp_w: f64,
}

impl CpuSpec {
    /// Intel Xeon Platinum 8160 (Skylake-SP), the Marconi A3 partition CPU:
    /// 24 cores, 2.10 GHz. Peak DP per core with AVX-512 + 2 FMA ports is
    /// 2.1e9 × 32 = 67.2 Gflop/s; we charge a sustained 70 % of that.
    pub fn xeon_8160() -> Self {
        Self {
            name: "Intel Xeon Platinum 8160".into(),
            family: 6,
            model: 0x55,
            cores_per_socket: 24,
            freq_ghz: 2.10,
            sustained_flops_per_core: 0.70 * 2.1e9 * 32.0,
            tdp_w: 150.0,
        }
    }

    /// A small generic CPU used by tests and scaled-down functional runs;
    /// same family/model so the RAPL path is identical. The sustained rate
    /// is deliberately low (2 Gflop/s per core) so scaled-down matrix sizes
    /// reach the compute-bound regime at the same n/ranks ratios where the
    /// paper's full-size runs do — otherwise every functional-tier
    /// configuration would sit at the network-latency floor.
    pub fn test_cpu(cores_per_socket: usize) -> Self {
        Self {
            name: "greenla test CPU".into(),
            family: 6,
            model: 0x55,
            cores_per_socket,
            freq_ghz: 2.0,
            sustained_flops_per_core: 2.0e9,
            tdp_w: 30.0 + 5.0 * cores_per_socket as f64,
        }
    }
}

/// One compute node: `sockets` CPUs plus DRAM.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    pub cpu: CpuSpec,
    /// Sockets (packages) per node; Marconi A3 has 2.
    pub sockets: usize,
    /// DRAM capacity in GiB (192 on Marconi A3).
    pub dram_gib: usize,
    /// Per-socket DRAM bandwidth in bytes/s (6 DDR4-2666 channels ≈ 128 GB/s).
    pub dram_bw_bytes_per_s: f64,
}

impl NodeSpec {
    /// Marconi A3 node: 2 × Xeon 8160, 192 GiB DDR4.
    pub fn marconi_a3() -> Self {
        Self {
            cpu: CpuSpec::xeon_8160(),
            sockets: 2,
            dram_gib: 192,
            dram_bw_bytes_per_s: 128.0e9,
        }
    }

    /// Small node for tests: 2 sockets × `cores_per_socket` cores.
    pub fn test_node(cores_per_socket: usize) -> Self {
        Self {
            cpu: CpuSpec::test_cpu(cores_per_socket),
            sockets: 2,
            dram_gib: 16,
            dram_bw_bytes_per_s: 32.0e9,
        }
    }

    /// Total cores on the node.
    pub fn cores(&self) -> usize {
        self.sockets * self.cpu.cores_per_socket
    }
}

/// Point-to-point communication cost parameters (LogGP-style α/β model),
/// distinguishing intra-node (shared-memory transport) from inter-node
/// (network) messages.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Interconnect {
    pub name: String,
    /// One-way network latency in seconds (α, inter-node).
    pub latency_s: f64,
    /// Network bandwidth in bytes/s (1/β, inter-node).
    pub bandwidth_bytes_per_s: f64,
    /// Latency of an intra-node (shared-memory) message.
    pub intra_latency_s: f64,
    /// Bandwidth of intra-node messaging in bytes/s.
    pub intra_bandwidth_bytes_per_s: f64,
    /// CPU overhead charged to sender and receiver per message (o in LogP).
    pub per_message_overhead_s: f64,
}

impl Interconnect {
    /// Intel Omni-Path 100 Gb/s, the Marconi interconnect: ~1 µs wire
    /// latency plus MPI software stack ≈ 1.8 µs end-to-end small-message
    /// latency, ~12.5 GB/s payload bandwidth.
    pub fn omni_path() -> Self {
        Self {
            name: "Intel Omni-Path 100".into(),
            latency_s: 1.8e-6,
            bandwidth_bytes_per_s: 12.5e9,
            intra_latency_s: 0.3e-6,
            intra_bandwidth_bytes_per_s: 40.0e9,
            per_message_overhead_s: 0.2e-6,
        }
    }

    /// Time for one message of `bytes` bytes between two ranks; `same_node`
    /// selects the shared-memory parameters.
    pub fn message_time(&self, bytes: u64, same_node: bool) -> f64 {
        let (alpha, bw) = if same_node {
            (self.intra_latency_s, self.intra_bandwidth_bytes_per_s)
        } else {
            (self.latency_s, self.bandwidth_bytes_per_s)
        };
        alpha + bytes as f64 / bw
    }
}

/// The whole simulated machine.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    pub node: NodeSpec,
    /// Number of nodes available.
    pub nodes: usize,
    pub net: Interconnect,
}

impl ClusterSpec {
    /// The paper's testbed: Marconi A3 (we size the partition per job; the
    /// real machine has 3188 nodes).
    pub fn marconi_a3(nodes: usize) -> Self {
        Self {
            node: NodeSpec::marconi_a3(),
            nodes,
            net: Interconnect::omni_path(),
        }
    }

    /// Small test cluster.
    pub fn test_cluster(nodes: usize, cores_per_socket: usize) -> Self {
        Self {
            node: NodeSpec::test_node(cores_per_socket),
            nodes,
            net: Interconnect::omni_path(),
        }
    }

    /// Total cores in the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.node.cores()
    }

    /// Peak sustained flop/s of one fully-loaded node.
    pub fn node_flops(&self) -> f64 {
        self.node.cores() as f64 * self.node.cpu.sustained_flops_per_core
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marconi_node_shape() {
        let n = NodeSpec::marconi_a3();
        assert_eq!(n.cores(), 48);
        assert_eq!(n.sockets, 2);
        assert_eq!(n.cpu.cores_per_socket, 24);
        assert_eq!(n.dram_gib, 192);
    }

    #[test]
    fn marconi_node_peak_near_paper_value() {
        // The paper quotes 3.2 TFlop/s peak per node; our sustained rate
        // must be below peak but the same order of magnitude.
        let n = NodeSpec::marconi_a3();
        let sustained = n.cores() as f64 * n.cpu.sustained_flops_per_core;
        assert!(
            sustained > 1.5e12 && sustained < 3.2e12,
            "sustained {sustained:.3e}"
        );
    }

    #[test]
    fn skylake_cpuid() {
        let c = CpuSpec::xeon_8160();
        assert_eq!((c.family, c.model), (6, 0x55));
    }

    #[test]
    fn message_time_monotone_in_size() {
        let net = Interconnect::omni_path();
        assert!(net.message_time(8, false) < net.message_time(8 << 20, false));
        // Intra-node messaging is cheaper.
        assert!(net.message_time(4096, true) < net.message_time(4096, false));
    }

    #[test]
    fn cluster_totals() {
        let c = ClusterSpec::marconi_a3(27);
        assert_eq!(c.total_cores(), 27 * 48);
    }
}
