//! Slurm-like batch job front end.
//!
//! The paper submits its runs through Slurm (`--ntasks`, `--ntasks-per-node`,
//! `--ntasks-per-socket`). This module parses those directives, validates
//! them against the cluster, and lowers them to a [`Placement`] — including
//! reproducing the pinning surprise the paper notes in §5.3 (one-socket jobs
//! rely on the directives actually constraining the sockets; here they do,
//! deterministically).

use crate::placement::{Placement, PlacementError};
use crate::spec::ClusterSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A batch job resource request.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// `--ntasks`
    pub ntasks: usize,
    /// `--ntasks-per-node`
    pub ntasks_per_node: usize,
    /// `--ntasks-per-socket` (None lets ranks fill socket 0 first)
    pub ntasks_per_socket: Option<usize>,
}

/// Submission failures.
#[derive(Debug, PartialEq, Eq)]
pub enum SlurmError {
    Placement(PlacementError),
    /// The job needs more nodes than the cluster has.
    TooFewNodes {
        needed: usize,
        available: usize,
    },
    /// `--ntasks-per-node` exceeds the node's core count.
    NodeOversubscribed {
        requested: usize,
        cores: usize,
    },
    /// A malformed directive string.
    BadDirective(String),
}

impl fmt::Display for SlurmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlurmError::Placement(e) => write!(f, "placement: {e}"),
            SlurmError::TooFewNodes { needed, available } => {
                write!(f, "job needs {needed} nodes, cluster has {available}")
            }
            SlurmError::NodeOversubscribed { requested, cores } => {
                write!(f, "--ntasks-per-node={requested} exceeds {cores} cores")
            }
            SlurmError::BadDirective(d) => write!(f, "bad directive: {d}"),
        }
    }
}

impl std::error::Error for SlurmError {}

impl From<PlacementError> for SlurmError {
    fn from(e: PlacementError) -> Self {
        SlurmError::Placement(e)
    }
}

impl JobSpec {
    /// Parse `#SBATCH`-style directives, e.g.
    /// `"--ntasks=144 --ntasks-per-node=48 --ntasks-per-socket=24"`.
    pub fn parse(directives: &str) -> Result<JobSpec, SlurmError> {
        let mut ntasks = None;
        let mut per_node = None;
        let mut per_socket = None;
        for tok in directives.split_whitespace() {
            let (key, val) = tok
                .split_once('=')
                .ok_or_else(|| SlurmError::BadDirective(tok.to_string()))?;
            let v: usize = val
                .parse()
                .map_err(|_| SlurmError::BadDirective(tok.to_string()))?;
            match key {
                "--ntasks" | "-n" => ntasks = Some(v),
                "--ntasks-per-node" => per_node = Some(v),
                "--ntasks-per-socket" => per_socket = Some(v),
                _ => return Err(SlurmError::BadDirective(tok.to_string())),
            }
        }
        let ntasks = ntasks.ok_or_else(|| SlurmError::BadDirective("--ntasks missing".into()))?;
        let ntasks_per_node =
            per_node.ok_or_else(|| SlurmError::BadDirective("--ntasks-per-node missing".into()))?;
        Ok(JobSpec {
            ntasks,
            ntasks_per_node,
            ntasks_per_socket: per_socket,
        })
    }

    /// Validate against the cluster and produce a placement.
    pub fn place(&self, cluster: &ClusterSpec) -> Result<Placement, SlurmError> {
        let node = &cluster.node;
        if self.ntasks_per_node > node.cores() {
            return Err(SlurmError::NodeOversubscribed {
                requested: self.ntasks_per_node,
                cores: node.cores(),
            });
        }
        let cps = node.cpu.cores_per_socket;
        let per_socket: Vec<usize> = match self.ntasks_per_socket {
            Some(s) => {
                // Fill sockets round-down with at most `s` ranks each.
                let mut remaining = self.ntasks_per_node;
                (0..node.sockets)
                    .map(|_| {
                        let take = s.min(remaining);
                        remaining -= take;
                        take
                    })
                    .collect()
            }
            None => {
                // Default bind: fill socket 0 first, overflow to socket 1.
                let mut remaining = self.ntasks_per_node;
                (0..node.sockets)
                    .map(|_| {
                        let take = cps.min(remaining);
                        remaining -= take;
                        take
                    })
                    .collect()
            }
        };
        if per_socket.iter().sum::<usize>() != self.ntasks_per_node {
            return Err(SlurmError::NodeOversubscribed {
                requested: self.ntasks_per_node,
                cores: node.cores(),
            });
        }
        let placement = Placement::explicit(node, self.ntasks, &per_socket)?;
        if placement.nodes_used() > cluster.nodes {
            return Err(SlurmError::TooFewNodes {
                needed: placement.nodes_used(),
                available: cluster.nodes,
            });
        }
        Ok(placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::LoadLayout;
    use crate::spec::ClusterSpec;

    #[test]
    fn parse_full_directives() {
        let j = JobSpec::parse("--ntasks=144 --ntasks-per-node=48 --ntasks-per-socket=24").unwrap();
        assert_eq!(j.ntasks, 144);
        assert_eq!(j.ntasks_per_node, 48);
        assert_eq!(j.ntasks_per_socket, Some(24));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(matches!(
            JobSpec::parse("--walltime=10"),
            Err(SlurmError::BadDirective(_))
        ));
        assert!(matches!(
            JobSpec::parse("--ntasks"),
            Err(SlurmError::BadDirective(_))
        ));
        assert!(matches!(
            JobSpec::parse("--ntasks=x"),
            Err(SlurmError::BadDirective(_))
        ));
    }

    #[test]
    fn paper_full_load_job_places_like_layout() {
        let cluster = ClusterSpec::marconi_a3(10);
        let j = JobSpec {
            ntasks: 144,
            ntasks_per_node: 48,
            ntasks_per_socket: Some(24),
        };
        let p = j.place(&cluster).unwrap();
        let reference = Placement::layout(&cluster.node, 144, LoadLayout::FullLoad).unwrap();
        assert_eq!(p, reference);
    }

    #[test]
    fn one_socket_job_pins_to_socket0() {
        let cluster = ClusterSpec::marconi_a3(10);
        // 24 per node with no per-socket cap: default bind fills socket 0.
        let j = JobSpec {
            ntasks: 48,
            ntasks_per_node: 24,
            ntasks_per_socket: None,
        };
        let p = j.place(&cluster).unwrap();
        for r in 0..48 {
            assert_eq!(p.core_of(r).socket, 0, "rank {r} escaped socket 0");
        }
    }

    #[test]
    fn two_socket_half_job_splits() {
        let cluster = ClusterSpec::marconi_a3(10);
        let j = JobSpec {
            ntasks: 24,
            ntasks_per_node: 24,
            ntasks_per_socket: Some(12),
        };
        let p = j.place(&cluster).unwrap();
        let s0 = (0..24).filter(|&r| p.core_of(r).socket == 0).count();
        assert_eq!(s0, 12);
    }

    #[test]
    fn too_few_nodes_rejected() {
        let cluster = ClusterSpec::marconi_a3(2);
        let j = JobSpec {
            ntasks: 144,
            ntasks_per_node: 48,
            ntasks_per_socket: Some(24),
        };
        assert_eq!(
            j.place(&cluster),
            Err(SlurmError::TooFewNodes {
                needed: 3,
                available: 2
            })
        );
    }

    #[test]
    fn node_oversubscription_rejected() {
        let cluster = ClusterSpec::marconi_a3(4);
        let j = JobSpec {
            ntasks: 100,
            ntasks_per_node: 50,
            ntasks_per_socket: None,
        };
        assert!(matches!(
            j.place(&cluster),
            Err(SlurmError::NodeOversubscribed { .. })
        ));
    }

    #[test]
    fn per_socket_cap_that_cannot_fit_rejected() {
        let cluster = ClusterSpec::marconi_a3(4);
        // 48 per node but only 20 allowed per socket: 40 < 48.
        let j = JobSpec {
            ntasks: 48,
            ntasks_per_node: 48,
            ntasks_per_socket: Some(20),
        };
        assert!(matches!(
            j.place(&cluster),
            Err(SlurmError::NodeOversubscribed { .. })
        ));
    }
}
