//! Core addressing within the simulated cluster.

use crate::spec::NodeSpec;
use serde::{Deserialize, Serialize};

/// Physical location of one hardware core: `(node, socket, core-in-socket)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoreId {
    pub node: usize,
    pub socket: usize,
    pub core: usize,
}

impl CoreId {
    pub fn new(node: usize, socket: usize, core: usize) -> Self {
        Self { node, socket, core }
    }

    /// Flat index of this core within its node (`socket * cps + core`).
    pub fn flat_in_node(&self, node: &NodeSpec) -> usize {
        self.socket * node.cpu.cores_per_socket + self.core
    }

    /// Inverse of [`CoreId::flat_in_node`].
    pub fn from_flat(node_idx: usize, flat: usize, node: &NodeSpec) -> Self {
        let cps = node.cpu.cores_per_socket;
        Self {
            node: node_idx,
            socket: flat / cps,
            core: flat % cps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NodeSpec;

    #[test]
    fn flat_roundtrip() {
        let node = NodeSpec::marconi_a3();
        for flat in [0, 1, 23, 24, 47] {
            let id = CoreId::from_flat(3, flat, &node);
            assert_eq!(id.node, 3);
            assert_eq!(id.flat_in_node(&node), flat);
        }
    }

    #[test]
    fn socket_boundary() {
        let node = NodeSpec::marconi_a3();
        assert_eq!(CoreId::from_flat(0, 23, &node).socket, 0);
        assert_eq!(CoreId::from_flat(0, 24, &node).socket, 1);
    }
}
