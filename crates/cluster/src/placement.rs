//! Rank-to-core placement and the paper's Table 1 configurations.
//!
//! The paper evaluates three node layouts for every rank count:
//!
//! * **full load** — 48 ranks/node (24 per socket on Marconi A3);
//! * **half load, one socket** — 24 ranks/node, all pinned to socket 0,
//!   socket 1 left idle;
//! * **half load, two sockets** — 24 ranks/node, split 12 + 12.
//!
//! [`LoadLayout`] generalises those to any node shape so scaled-down
//! functional runs keep the same geometry, and [`table1_rows`] reproduces
//! the paper's Table 1 exactly for the Marconi node.

use crate::spec::NodeSpec;
use crate::topology::CoreId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three load layouts of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoadLayout {
    /// All cores of every socket carry one rank each (48/node on Marconi).
    FullLoad,
    /// Half the node's ranks, all on socket 0 (24/node on Marconi).
    HalfOneSocket,
    /// Half the node's ranks, split evenly across both sockets (12+12).
    HalfTwoSockets,
}

impl LoadLayout {
    /// All three layouts in the paper's order.
    pub fn all() -> [LoadLayout; 3] {
        [
            LoadLayout::FullLoad,
            LoadLayout::HalfOneSocket,
            LoadLayout::HalfTwoSockets,
        ]
    }

    /// Ranks placed on each node under this layout (always consistent with
    /// [`LoadLayout::per_socket`], including odd core counts).
    pub fn ranks_per_node(&self, node: &NodeSpec) -> usize {
        let (s0, s1) = self.per_socket(node);
        s0 + s1
    }

    /// Number of sockets that receive ranks.
    pub fn sockets_used(&self) -> usize {
        match self {
            LoadLayout::FullLoad | LoadLayout::HalfTwoSockets => 2,
            LoadLayout::HalfOneSocket => 1,
        }
    }

    /// Ranks on each of the node's two sockets `(socket0, socket1)`.
    pub fn per_socket(&self, node: &NodeSpec) -> (usize, usize) {
        let cps = node.cpu.cores_per_socket;
        match self {
            LoadLayout::FullLoad => (cps, cps),
            LoadLayout::HalfOneSocket => (cps, 0),
            LoadLayout::HalfTwoSockets => (cps / 2, cps / 2),
        }
    }

    /// Short label used in charts and CSV columns.
    pub fn label(&self) -> &'static str {
        match self {
            LoadLayout::FullLoad => "full-48",
            LoadLayout::HalfOneSocket => "half-1sock",
            LoadLayout::HalfTwoSockets => "half-2sock",
        }
    }
}

impl fmt::Display for LoadLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a placement could not be constructed.
#[derive(Debug, PartialEq, Eq)]
pub enum PlacementError {
    /// `ntasks` is not a multiple of the ranks-per-node of the layout.
    NotDivisible {
        ntasks: usize,
        ranks_per_node: usize,
    },
    /// A socket would receive more ranks than it has cores.
    SocketOversubscribed { requested: usize, cores: usize },
    /// Zero tasks requested.
    Empty,
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::NotDivisible {
                ntasks,
                ranks_per_node,
            } => write!(
                f,
                "{ntasks} tasks not divisible by {ranks_per_node} ranks per node"
            ),
            PlacementError::SocketOversubscribed { requested, cores } => {
                write!(f, "{requested} ranks requested on a {cores}-core socket")
            }
            PlacementError::Empty => write!(f, "no tasks requested"),
        }
    }
}

impl std::error::Error for PlacementError {}

/// A concrete rank → core assignment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    node_spec: NodeSpec,
    cores: Vec<CoreId>,
    nodes_used: usize,
}

impl Placement {
    /// Place `ntasks` ranks under `layout`, using as many nodes as needed.
    /// Ranks are assigned in block order (rank 0..k on node 0, …), and
    /// within a node in socket-major, core-minor order over the sockets the
    /// layout uses — matching Slurm's `--distribution=block:block`.
    pub fn layout(
        node_spec: &NodeSpec,
        ntasks: usize,
        layout: LoadLayout,
    ) -> Result<Placement, PlacementError> {
        if ntasks == 0 {
            return Err(PlacementError::Empty);
        }
        let rpn = layout.ranks_per_node(node_spec);
        if !ntasks.is_multiple_of(rpn) {
            return Err(PlacementError::NotDivisible {
                ntasks,
                ranks_per_node: rpn,
            });
        }
        let (s0, s1) = layout.per_socket(node_spec);
        Self::explicit(node_spec, ntasks, &[s0, s1])
    }

    /// Place `ntasks` ranks with an explicit per-socket rank count on every
    /// node (`per_socket[s]` ranks pinned to the first cores of socket `s`).
    pub fn explicit(
        node_spec: &NodeSpec,
        ntasks: usize,
        per_socket: &[usize],
    ) -> Result<Placement, PlacementError> {
        if ntasks == 0 {
            return Err(PlacementError::Empty);
        }
        assert_eq!(
            per_socket.len(),
            node_spec.sockets,
            "per-socket spec length"
        );
        let cps = node_spec.cpu.cores_per_socket;
        for &r in per_socket {
            if r > cps {
                return Err(PlacementError::SocketOversubscribed {
                    requested: r,
                    cores: cps,
                });
            }
        }
        let rpn: usize = per_socket.iter().sum();
        if rpn == 0 || !ntasks.is_multiple_of(rpn) {
            return Err(PlacementError::NotDivisible {
                ntasks,
                ranks_per_node: rpn.max(1),
            });
        }
        let nodes_used = ntasks / rpn;
        let mut cores = Vec::with_capacity(ntasks);
        for node in 0..nodes_used {
            for (socket, &count) in per_socket.iter().enumerate() {
                for core in 0..count {
                    cores.push(CoreId::new(node, socket, core));
                }
            }
        }
        Ok(Placement {
            node_spec: node_spec.clone(),
            cores,
            nodes_used,
        })
    }

    /// Pack `ntasks` ranks densely: fill each node's cores in socket-major
    /// order, the last node possibly partially. Accepts any task count —
    /// the workhorse for tests and ad-hoc runs that don't model a paper
    /// configuration.
    pub fn packed(node_spec: &NodeSpec, ntasks: usize) -> Result<Placement, PlacementError> {
        if ntasks == 0 {
            return Err(PlacementError::Empty);
        }
        let per_node = node_spec.cores();
        let cps = node_spec.cpu.cores_per_socket;
        let nodes_used = ntasks.div_ceil(per_node);
        let mut cores = Vec::with_capacity(ntasks);
        for rank in 0..ntasks {
            let node = rank / per_node;
            let flat = rank % per_node;
            cores.push(CoreId::new(node, flat / cps, flat % cps));
        }
        Ok(Placement {
            node_spec: node_spec.clone(),
            cores,
            nodes_used,
        })
    }

    /// Number of ranks.
    pub fn ntasks(&self) -> usize {
        self.cores.len()
    }

    /// Number of nodes that received at least one rank.
    pub fn nodes_used(&self) -> usize {
        self.nodes_used
    }

    /// Node spec the placement was built for.
    pub fn node_spec(&self) -> &NodeSpec {
        &self.node_spec
    }

    /// Physical core of a rank.
    pub fn core_of(&self, rank: usize) -> CoreId {
        self.cores[rank]
    }

    /// Node index of a rank.
    pub fn node_of(&self, rank: usize) -> usize {
        self.cores[rank].node
    }

    /// All ranks placed on `node`, in rank order.
    pub fn ranks_on_node(&self, node: usize) -> Vec<usize> {
        (0..self.ntasks())
            .filter(|&r| self.cores[r].node == node)
            .collect()
    }

    /// Ranks per node (uniform by construction).
    pub fn ranks_per_node(&self) -> usize {
        self.ntasks() / self.nodes_used
    }
}

/// One row of the paper's Table 1.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1Row {
    pub ranks: usize,
    pub nodes: usize,
    pub ranks_per_node: usize,
    pub sockets: usize,
    pub ranks_per_socket: (usize, usize),
    pub layout: LoadLayout,
}

/// The paper's rank counts (square numbers, as IMeP requires).
pub const PAPER_RANKS: [usize; 3] = [144, 576, 1296];

/// The paper's matrix dimensions.
pub const PAPER_DIMS: [usize; 4] = [8640, 17280, 25920, 34560];

/// Reproduce Table 1 for a given node shape (the Marconi node yields the
/// published numbers; scaled-down nodes yield the analogous geometry).
pub fn table1_rows(node: &NodeSpec, rank_counts: &[usize]) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for &ranks in rank_counts {
        for layout in LoadLayout::all() {
            let rpn = layout.ranks_per_node(node);
            let per_socket = layout.per_socket(node);
            rows.push(Table1Row {
                ranks,
                nodes: ranks / rpn,
                ranks_per_node: rpn,
                sockets: layout.sockets_used(),
                ranks_per_socket: per_socket,
                layout,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NodeSpec;

    type Table1Expected = (usize, usize, usize, usize, (usize, usize));

    #[test]
    fn table1_matches_paper_exactly() {
        let node = NodeSpec::marconi_a3();
        let rows = table1_rows(&node, &PAPER_RANKS);
        // The paper's Table 1, row by row.
        let expected: [Table1Expected; 9] = [
            (144, 3, 48, 2, (24, 24)),
            (144, 6, 24, 1, (24, 0)),
            (144, 6, 24, 2, (12, 12)),
            (576, 12, 48, 2, (24, 24)),
            (576, 24, 24, 1, (24, 0)),
            (576, 24, 24, 2, (12, 12)),
            (1296, 27, 48, 2, (24, 24)),
            (1296, 54, 24, 1, (24, 0)),
            (1296, 54, 24, 2, (12, 12)),
        ];
        assert_eq!(rows.len(), expected.len());
        for (row, exp) in rows.iter().zip(&expected) {
            assert_eq!(
                (
                    row.ranks,
                    row.nodes,
                    row.ranks_per_node,
                    row.sockets,
                    row.ranks_per_socket
                ),
                *exp,
                "mismatch for {row:?}"
            );
        }
    }

    #[test]
    fn full_load_uses_every_core() {
        let node = NodeSpec::marconi_a3();
        let p = Placement::layout(&node, 96, LoadLayout::FullLoad).unwrap();
        assert_eq!(p.nodes_used(), 2);
        assert_eq!(p.ranks_per_node(), 48);
        // No two ranks share a core.
        let mut seen = std::collections::HashSet::new();
        for r in 0..96 {
            assert!(seen.insert(p.core_of(r)), "core reused by rank {r}");
        }
    }

    #[test]
    fn half_one_socket_leaves_socket1_idle() {
        let node = NodeSpec::marconi_a3();
        let p = Placement::layout(&node, 48, LoadLayout::HalfOneSocket).unwrap();
        assert_eq!(p.nodes_used(), 2);
        for r in 0..48 {
            assert_eq!(p.core_of(r).socket, 0);
        }
    }

    #[test]
    fn half_two_sockets_splits_evenly() {
        let node = NodeSpec::marconi_a3();
        let p = Placement::layout(&node, 24, LoadLayout::HalfTwoSockets).unwrap();
        assert_eq!(p.nodes_used(), 1);
        let s0 = (0..24).filter(|&r| p.core_of(r).socket == 0).count();
        assert_eq!(s0, 12);
    }

    #[test]
    fn block_distribution_rank_order() {
        let node = NodeSpec::marconi_a3();
        let p = Placement::layout(&node, 144, LoadLayout::FullLoad).unwrap();
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(47), 0);
        assert_eq!(p.node_of(48), 1);
        assert_eq!(p.node_of(143), 2);
        assert_eq!(p.ranks_on_node(1), (48..96).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_non_divisible() {
        let node = NodeSpec::marconi_a3();
        assert_eq!(
            Placement::layout(&node, 50, LoadLayout::FullLoad),
            Err(PlacementError::NotDivisible {
                ntasks: 50,
                ranks_per_node: 48
            })
        );
    }

    #[test]
    fn rejects_oversubscription() {
        let node = NodeSpec::marconi_a3();
        assert!(matches!(
            Placement::explicit(&node, 60, &[30, 30]),
            Err(PlacementError::SocketOversubscribed { .. })
        ));
    }

    #[test]
    fn rejects_empty() {
        let node = NodeSpec::marconi_a3();
        assert_eq!(
            Placement::layout(&node, 0, LoadLayout::FullLoad),
            Err(PlacementError::Empty)
        );
    }

    #[test]
    fn scaled_down_node_keeps_geometry() {
        // 4-core-per-socket test node: full = 8/node, half = 4/node.
        let node = NodeSpec::test_node(4);
        let p = Placement::layout(&node, 16, LoadLayout::HalfTwoSockets).unwrap();
        assert_eq!(p.nodes_used(), 4);
        let s1 = (0..4).filter(|&r| p.core_of(r).socket == 1).count();
        assert_eq!(s1, 2);
    }
}
