//! E-F4: Figure 4 — energy and duration vs matrix dimension at a fixed
//! rank count (full-load deployment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greenla_bench::{monitored, system, Solver};
use greenla_cluster::placement::LoadLayout;

fn bench_fig4(c: &mut Criterion) {
    let ranks = 16;
    eprintln!("\nFig.4 series (ranks={ranks}, full load): energy & duration vs dimension");
    for solver in [Solver::ime(), Solver::scalapack()] {
        let mut line = format!("{:<10}", solver.label());
        for n in [96usize, 160, 224, 288] {
            let s = monitored(solver, &system(n), ranks, LoadLayout::FullLoad);
            line.push_str(&format!(
                " | n={n}: {:>8.4} J {:>9.6} s",
                s.total_energy_j, s.duration_s
            ));
        }
        eprintln!("  {line}");
    }

    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    for n in [96usize, 224] {
        let sys = system(n);
        for solver in [Solver::ime(), Solver::scalapack()] {
            let id = format!("{}-n{}", solver.label(), n);
            g.bench_with_input(BenchmarkId::new("run", id), &n, |b, _| {
                b.iter(|| monitored(solver, &sys, ranks, LoadLayout::FullLoad))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
