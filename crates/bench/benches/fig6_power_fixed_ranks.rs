//! E-F6: Figure 6 — energy and mean power vs matrix dimension at a fixed
//! rank count. Power stays near-flat in dimension (the paper's
//! "constant almost horizontal line"), which the printed series shows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greenla_bench::{monitored, system, Solver};
use greenla_cluster::placement::LoadLayout;

fn bench_fig6(c: &mut Criterion) {
    let ranks = 16;
    eprintln!("\nFig.6 series (ranks={ranks}): power [W] vs dimension (near-flat expected)");
    for solver in [Solver::ime(), Solver::scalapack()] {
        let mut line = format!("{:<10}", solver.label());
        for n in [128usize, 192, 256, 320] {
            let s = monitored(solver, &system(n), ranks, LoadLayout::FullLoad);
            line.push_str(&format!(" | n={n}: {:>7.2} W", s.mean_power_w));
        }
        eprintln!("  {line}");
    }

    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    let sys = system(192);
    for solver in [Solver::ime(), Solver::scalapack()] {
        g.bench_with_input(
            BenchmarkId::new("run", solver.label()),
            &solver,
            |b, &solver| b.iter(|| monitored(solver, &sys, ranks, LoadLayout::FullLoad)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
