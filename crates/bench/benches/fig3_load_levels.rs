//! E-F3: Figure 3 — total energy under full-loaded vs half-loaded
//! processors, both solvers. Prints the regenerated series and times one
//! representative monitored run per (solver, layout).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greenla_bench::{monitored, system, Solver};
use greenla_cluster::placement::LoadLayout;

fn bench_fig3(c: &mut Criterion) {
    let ranks = 16;
    // Regenerate the figure's series once.
    eprintln!("\nFig.3 series (ranks={ranks}): total energy [J] per matrix dimension");
    for solver in [Solver::ime(), Solver::scalapack()] {
        for layout in LoadLayout::all() {
            let mut line = format!("{:<10} {:<11}", solver.label(), layout.label());
            for n in [96usize, 192] {
                let s = monitored(solver, &system(n), ranks, layout);
                line.push_str(&format!(" n={n}: {:>9.4} J", s.total_energy_j));
            }
            eprintln!("  {line}");
        }
    }

    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    let sys = system(128);
    for solver in [Solver::ime(), Solver::scalapack()] {
        for layout in LoadLayout::all() {
            let id = format!("{}-{}", solver.label(), layout.label());
            g.bench_with_input(BenchmarkId::new("run", id), &layout, |b, &layout| {
                b.iter(|| monitored(solver, &sys, ranks, layout))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
