//! Microbenchmarks of the mini-BLAS kernels underlying both solvers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use greenla_linalg::{blas1, blas2, blas3, Matrix};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn bench_blas1(c: &mut Criterion) {
    let mut g = c.benchmark_group("blas1");
    for n in [256usize, 4096, 65536] {
        let x = rand_vec(n, 1);
        let y = rand_vec(n, 2);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("ddot", n), &n, |b, _| {
            b.iter(|| blas1::ddot(&x, &y))
        });
        g.bench_with_input(BenchmarkId::new("idamax", n), &n, |b, _| {
            b.iter(|| blas1::idamax(&x))
        });
        let mut z = y.clone();
        g.bench_with_input(BenchmarkId::new("daxpy", n), &n, |b, _| {
            b.iter(|| blas1::daxpy(1.0001, &x, &mut z))
        });
    }
    g.finish();
}

fn bench_blas2(c: &mut Criterion) {
    let mut g = c.benchmark_group("blas2");
    for n in [64usize, 256] {
        let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
        let x = rand_vec(n, 3);
        let mut y = vec![0.0; n];
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::new("dgemv", n), &n, |b, _| {
            b.iter(|| blas2::dgemv(1.0, a.block(), &x, 0.0, &mut y))
        });
        let mut a2 = a.clone();
        g.bench_with_input(BenchmarkId::new("dger", n), &n, |b, _| {
            b.iter(|| {
                let ld = a2.ld();
                blas2::dger(n, n, 1e-9, &x, &x, a2.as_mut_slice(), ld)
            })
        });
    }
    g.finish();
}

fn bench_blas3(c: &mut Criterion) {
    let mut g = c.benchmark_group("blas3");
    g.sample_size(10);
    for n in [64usize, 128, 256] {
        let a = Matrix::from_fn(n, n, |i, j| ((i + j) % 7) as f64 - 3.0);
        let b_m = Matrix::from_fn(n, n, |i, j| ((i * 2 + j) % 5) as f64 - 2.0);
        let mut cm = Matrix::zeros(n, n);
        g.throughput(Throughput::Elements(2 * (n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("dgemm", n), &n, |bch, _| {
            bch.iter(|| blas3::dgemm(1.0, a.block(), b_m.block(), 0.0, cm.block_mut()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_blas1, bench_blas2, bench_blas3);
criterion_main!(benches);
