//! E-T1: regenerate the paper's Table 1 (test configurations) and time the
//! placement machinery it exercises.

use criterion::{criterion_group, criterion_main, Criterion};
use greenla_cluster::placement::{table1_rows, LoadLayout, Placement, PAPER_RANKS};
use greenla_cluster::slurm::JobSpec;
use greenla_cluster::spec::{ClusterSpec, NodeSpec};

fn bench_table1(c: &mut Criterion) {
    // Print the regenerated table once.
    let rows = table1_rows(&NodeSpec::marconi_a3(), &PAPER_RANKS);
    eprintln!("\nTable 1 — test configurations:");
    eprintln!(
        "{:>6} {:>6} {:>11} {:>8} {:>14}",
        "ranks", "nodes", "ranks/node", "sockets", "ranks/socket"
    );
    for r in &rows {
        eprintln!(
            "{:>6} {:>6} {:>11} {:>8} {:>9},{}",
            r.ranks,
            r.nodes,
            r.ranks_per_node,
            r.sockets,
            r.ranks_per_socket.0,
            r.ranks_per_socket.1
        );
    }

    c.bench_function("table1/rows", |b| {
        b.iter(|| table1_rows(&NodeSpec::marconi_a3(), &PAPER_RANKS))
    });
    c.bench_function("table1/placement-1296-full", |b| {
        let node = NodeSpec::marconi_a3();
        b.iter(|| Placement::layout(&node, 1296, LoadLayout::FullLoad).unwrap())
    });
    c.bench_function("table1/slurm-submit", |b| {
        let cluster = ClusterSpec::marconi_a3(60);
        b.iter(|| {
            JobSpec::parse("--ntasks=1296 --ntasks-per-node=48 --ntasks-per-socket=24")
                .unwrap()
                .place(&cluster)
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
