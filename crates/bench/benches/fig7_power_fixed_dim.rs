//! E-F7: Figure 7 — energy and mean power vs rank count at a fixed matrix
//! dimension. Power grows with the deployed ranks ("directly proportional
//! course", §5.2), which the printed series shows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greenla_bench::{monitored, system, Solver};
use greenla_cluster::placement::LoadLayout;

fn bench_fig7(c: &mut Criterion) {
    let n = 192;
    let sys = system(n);
    eprintln!("\nFig.7 series (n={n}): power [W] vs ranks (growing expected)");
    for solver in [Solver::ime(), Solver::scalapack()] {
        let mut line = format!("{:<10}", solver.label());
        for ranks in [8usize, 16, 32, 64] {
            let s = monitored(solver, &sys, ranks, LoadLayout::FullLoad);
            line.push_str(&format!(" | N={ranks}: {:>7.2} W", s.mean_power_w));
        }
        eprintln!("  {line}");
    }

    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    for ranks in [8usize, 64] {
        for solver in [Solver::ime(), Solver::scalapack()] {
            let id = format!("{}-N{}", solver.label(), ranks);
            g.bench_with_input(BenchmarkId::new("run", id), &ranks, |b, &ranks| {
                b.iter(|| monitored(solver, &sys, ranks, LoadLayout::FullLoad))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
