//! E-O1: the monitoring framework's synchronisation overhead — the paper's
//! acknowledged accuracy-for-overhead trade-off, quantified.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greenla_bench::system;
use greenla_cluster::placement::Placement;
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_ime::{solve_imep, ImepOptions};
use greenla_monitor::monitoring::MonitorConfig;
use greenla_monitor::overhead::measure_overhead;
use greenla_monitor::protocol::monitored_run;
use greenla_mpi::Machine;
use greenla_rapl::RaplSim;
use std::sync::Arc;

fn build() -> Machine {
    let spec = ClusterSpec::test_cluster(4, 4);
    let placement = Placement::packed(&spec.node, 16).unwrap();
    let power = PowerModel::scaled_deterministic(&spec.node);
    Machine::new(spec, placement, power, 55).unwrap()
}

fn bench_overhead(c: &mut Criterion) {
    let sys = system(160);
    // Report the virtual-time overhead once.
    let rep = measure_overhead(build, |ctx| {
        let world = ctx.world();
        solve_imep(ctx, &world, &sys, ImepOptions::optimized()).unwrap();
    });
    eprintln!(
        "\nE-O1 monitoring overhead (virtual time): monitored {:.6} s vs raw {:.6} s → {:.2} %",
        rep.monitored_s,
        rep.raw_s,
        rep.overhead_fraction() * 100.0
    );

    let mut g = c.benchmark_group("monitor-overhead");
    g.sample_size(10);
    g.bench_with_input(BenchmarkId::new("solve", "raw"), &(), |b, _| {
        b.iter(|| {
            let m = build();
            m.run(|ctx| {
                let world = ctx.world();
                solve_imep(ctx, &world, &sys, ImepOptions::optimized()).unwrap()
            })
        })
    });
    g.bench_with_input(BenchmarkId::new("solve", "monitored"), &(), |b, _| {
        b.iter(|| {
            let m = build();
            let rapl = Arc::new(RaplSim::new(m.ledger(), m.power().clone(), m.seed()));
            m.run(|ctx| {
                let world = ctx.world();
                monitored_run(ctx, &rapl, &MonitorConfig::default(), |ctx, _| {
                    solve_imep(ctx, &world, &sys, ImepOptions::optimized()).unwrap()
                })
                .unwrap()
                .result
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
