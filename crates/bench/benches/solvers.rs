//! Sequential solver benchmarks: the Inhibition Method against blocked LU
//! on the same systems — the arithmetic-cost ratio (~3×) behind the
//! paper's energy story, measured in wall time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greenla_bench::system;
use greenla_ime::solve_seq;
use greenla_scalapack::getrs::gesv;

fn bench_sequential_solvers(c: &mut Criterion) {
    let mut g = c.benchmark_group("sequential-solvers");
    g.sample_size(10);
    for n in [64usize, 128, 256] {
        let sys = system(n);
        g.bench_with_input(BenchmarkId::new("IMe", n), &n, |b, _| {
            b.iter(|| solve_seq(&sys).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("LU-nb32", n), &n, |b, _| {
            b.iter(|| gesv(&sys.a, &sys.b, 32).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sequential_solvers);
criterion_main!(benches);
