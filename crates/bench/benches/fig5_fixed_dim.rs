//! E-F5: Figure 5 — energy and duration vs rank count at a fixed matrix
//! dimension (the strong-scaling / crossover figure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greenla_bench::{monitored, system, Solver};
use greenla_cluster::placement::LoadLayout;

fn bench_fig5(c: &mut Criterion) {
    let n = 192;
    let sys = system(n);
    eprintln!("\nFig.5 series (n={n}, full load): energy & duration vs ranks");
    for solver in [Solver::ime(), Solver::scalapack()] {
        let mut line = format!("{:<10}", solver.label());
        for ranks in [8usize, 16, 32] {
            let s = monitored(solver, &sys, ranks, LoadLayout::FullLoad);
            line.push_str(&format!(
                " | N={ranks}: {:>8.4} J {:>9.6} s",
                s.total_energy_j, s.duration_s
            ));
        }
        eprintln!("  {line}");
    }

    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    for ranks in [8usize, 32] {
        for solver in [Solver::ime(), Solver::scalapack()] {
            let id = format!("{}-N{}", solver.label(), ranks);
            g.bench_with_input(BenchmarkId::new("run", id), &ranks, |b, &ranks| {
                b.iter(|| monitored(solver, &sys, ranks, LoadLayout::FullLoad))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
