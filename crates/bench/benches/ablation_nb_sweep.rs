//! A-2: ablation of the ScaLAPACK block size `nb` — the classic
//! latency-vs-locality trade-off of block-cyclic LU, measured in virtual
//! time on the simulated cluster.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greenla_bench::system;
use greenla_cluster::placement::Placement;
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_mpi::Machine;
use greenla_scalapack::pdgesv::pdgesv;

fn run_nb(sys: &greenla_linalg::LinearSystem, nb: usize) -> f64 {
    let spec = ClusterSpec::test_cluster(4, 4);
    let placement = Placement::packed(&spec.node, 16).unwrap();
    let power = PowerModel::scaled_deterministic(&spec.node);
    let machine = Machine::new(spec, placement, power, 88).unwrap();
    let out = machine.run(|ctx| {
        let world = ctx.world();
        pdgesv(ctx, &world, sys, nb).unwrap()
    });
    out.makespan
}

fn bench_nb_sweep(c: &mut Criterion) {
    let sys = system(256);
    eprintln!("\nA-2 pdgesv block-size sweep (n=256, 16 ranks), virtual time:");
    for nb in [2usize, 4, 8, 16, 32, 64] {
        eprintln!("  nb={nb:<3} {:>10.6} s", run_nb(&sys, nb));
    }

    let mut g = c.benchmark_group("ablation-nb");
    g.sample_size(10);
    for nb in [4usize, 16, 64] {
        g.bench_with_input(BenchmarkId::new("pdgesv", nb), &nb, |b, &nb| {
            b.iter(|| run_nb(&sys, nb))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_nb_sweep);
criterion_main!(benches);
