//! A-1: ablation of IMeP's communication protocol — the paper-faithful
//! variant (centralised h, last-row returns to the master, binomial
//! broadcasts) against each optimisation, isolating what each costs or
//! saves in virtual time and traffic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use greenla_bench::system;
use greenla_cluster::placement::Placement;
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_ime::{solve_imep, ImepOptions};
use greenla_mpi::Machine;

fn run_variant(sys: &greenla_linalg::LinearSystem, opts: ImepOptions) -> (f64, u64) {
    let spec = ClusterSpec::test_cluster(4, 4);
    let placement = Placement::packed(&spec.node, 16).unwrap();
    let power = PowerModel::scaled_deterministic(&spec.node);
    let machine = Machine::new(spec, placement, power, 66).unwrap();
    let out = machine.run(|ctx| {
        let world = ctx.world();
        solve_imep(ctx, &world, sys, opts).unwrap()
    });
    (out.makespan, out.traffic.msgs)
}

fn bench_ablation(c: &mut Criterion) {
    let sys = system(192);
    let variants: [(&str, ImepOptions); 5] = [
        ("paper", ImepOptions::paper()),
        (
            "no-last-rows",
            ImepOptions {
                collect_last_rows: false,
                ..ImepOptions::paper()
            },
        ),
        (
            "local-h",
            ImepOptions {
                centralized_h: false,
                ..ImepOptions::paper()
            },
        ),
        (
            "pipelined-bcast",
            ImepOptions {
                pipelined_bcast: true,
                ..ImepOptions::paper()
            },
        ),
        ("optimized", ImepOptions::optimized()),
    ];

    eprintln!("\nA-1 IMeP protocol ablation (n=192, 16 ranks):");
    let (t_base, m_base) = run_variant(&sys, ImepOptions::paper());
    for (name, opts) in variants {
        let (t, m) = run_variant(&sys, opts);
        eprintln!(
            "  {name:<16} {t:>10.6} s ({:+6.1} %)   {m:>7} msgs ({:+6.1} %)",
            (t / t_base - 1.0) * 100.0,
            (m as f64 / m_base as f64 - 1.0) * 100.0
        );
    }

    let mut g = c.benchmark_group("ablation-ime-comm");
    g.sample_size(10);
    for (name, opts) in variants {
        g.bench_with_input(BenchmarkId::new("variant", name), &opts, |b, &opts| {
            b.iter(|| run_variant(&sys, opts))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
