#![forbid(unsafe_code)]
//! Shared helpers for the Criterion benchmark suite.
//!
//! Each `benches/figN_*.rs` target regenerates one of the paper's figures:
//! it runs the corresponding simulated measurement (printing the series it
//! produces, i.e. the figure's data) and lets Criterion time the
//! regeneration. `benches/kernels.rs` and `benches/solvers.rs` are ordinary
//! microbenchmarks of the numeric substrate; the `ablation_*` targets
//! quantify the design choices called out in DESIGN.md.

use greenla_cluster::placement::{LoadLayout, Placement};
use greenla_cluster::spec::{ClusterSpec, NodeSpec};
use greenla_cluster::PowerModel;
use greenla_ime::{solve_imep, ImepOptions};
use greenla_linalg::generate::{self, LinearSystem};
use greenla_monitor::monitoring::MonitorConfig;
use greenla_monitor::protocol::monitored_run;
use greenla_monitor::report::JobSummary;
use greenla_mpi::Machine;
use greenla_rapl::RaplSim;
use greenla_scalapack::pdgesv::pdgesv;
use std::sync::Arc;

/// Which solver a benchmark run uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Solver {
    Ime(ImepOptions),
    ScaLapack { nb: usize },
}

impl Solver {
    pub fn ime() -> Self {
        Solver::Ime(ImepOptions::optimized())
    }

    pub fn scalapack() -> Self {
        Solver::ScaLapack { nb: 16 }
    }

    pub fn label(&self) -> &'static str {
        match self {
            Solver::Ime(_) => "IMe",
            Solver::ScaLapack { .. } => "ScaLAPACK",
        }
    }
}

/// One monitored simulated run; returns the job summary.
pub fn monitored(
    solver: Solver,
    sys: &LinearSystem,
    ranks: usize,
    layout: LoadLayout,
) -> JobSummary {
    let node = NodeSpec::test_node(4);
    let placement = Placement::layout(&node, ranks, layout).expect("placement");
    let spec = ClusterSpec {
        node: node.clone(),
        nodes: placement.nodes_used(),
        net: greenla_cluster::Interconnect::omni_path(),
    };
    let power = PowerModel::scaled_for(&node);
    let machine = Machine::new(spec, placement, power, 42).expect("machine");
    let rapl = Arc::new(RaplSim::new(machine.ledger(), machine.power().clone(), 42));
    let out = machine.run(|ctx| {
        let world = ctx.world();
        monitored_run(
            ctx,
            &rapl,
            &MonitorConfig::default(),
            |ctx, _| match solver {
                Solver::Ime(opts) => solve_imep(ctx, &world, sys, opts).expect("IMe"),
                Solver::ScaLapack { nb } => pdgesv(ctx, &world, sys, nb).expect("pdgesv"),
            },
        )
        .expect("monitoring")
        .report
    });
    let reports: Vec<_> = out.results.into_iter().flatten().collect();
    JobSummary::aggregate(&reports)
}

/// Deterministic benchmark input.
pub fn system(n: usize) -> LinearSystem {
    generate::diag_dominant(n, 77)
}
