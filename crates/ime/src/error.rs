//! IMe failure modes.

use std::fmt;

/// Why the Inhibition Method could not solve a system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImeError {
    /// A diagonal coefficient is exactly zero, so the inhibition table
    /// `T(n)` cannot be built (`1/aᵢᵢ` undefined).
    ZeroDiagonal { row: usize },
    /// The inhibitor (pivot) `t_{l,n+l}` vanished at level `l`; IMe has no
    /// pivoting, so the method fails where Gaussian elimination with
    /// partial pivoting may still succeed.
    ZeroInhibitor { level: usize },
}

impl fmt::Display for ImeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImeError::ZeroDiagonal { row } => {
                write!(
                    f,
                    "zero diagonal coefficient a[{row},{row}]: inhibition table undefined"
                )
            }
            ImeError::ZeroInhibitor { level } => {
                write!(
                    f,
                    "zero inhibitor at level {level}: IMe cannot proceed without pivoting"
                )
            }
        }
    }
}

impl std::error::Error for ImeError {}
