//! IMeP — the column-wise parallel Inhibition Method.
//!
//! Columns of the `n × 2n` inhibition table are dealt cyclically to the `N`
//! ranks of the communicator (rank 0 is the master). Every level `l`
//! follows the paper's §2.1 protocol:
//!
//! 1. the node computing the level's last column `t_{·,n+l}` **broadcasts
//!    it to all the other nodes**;
//! 2. the **master computes the auxiliary quantities `h^(l)`** from it and
//!    broadcasts them to all slaves;
//! 3. every node applies the fundamental update to the columns it owns;
//! 4. the slaves **send the modified last-row (row `l`) entries of their
//!    columns to the master**, which archives the reduced rows (they feed
//!    the fault-tolerance extension and post-hoc verification).
//!
//! Initialisation adds a master→slaves broadcast of `b`; termination adds a
//! gather of the per-column solution components and a broadcast of the
//! assembled `x`, so every rank returns the replicated solution (same
//! convention as `pdgesv`).

use crate::error::ImeError;
use crate::table::init_column;
use greenla_linalg::blas1::ddot;
use greenla_linalg::flops;
use greenla_linalg::generate::LinearSystem;
use greenla_mpi::{Comm, RankCtx};
use std::sync::Arc;

/// Chunk size (f64 elements) of the pipelined column broadcast: 8 KiB —
/// small enough that the per-hop depth penalty stays near the latency
/// floor while the stream amortises the volume.
pub const BCAST_CHUNK: usize = 1024;

/// DRAM-traffic model: the per-level table update is a rank-1-style sweep
/// (arithmetic intensity ~1/8 flop/byte), which a naive implementation
/// would re-stream from DRAM every level. Production IMe kernels fuse a
/// block of consecutive levels per sweep (the level column and `h` are
/// small and cache-resident), so each table element travels to DRAM once
/// per `LEVEL_FUSE` levels. 64 keeps the kernel just at the machine's
/// flops/byte balance point — the paper's observed IMe durations are
/// compute-bound, not 50× memory-bound.
pub const LEVEL_FUSE: u64 = 64;

/// Tuning knobs for IMeP (exposed for the ablation benchmarks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImepOptions {
    /// Send the last-row entries to the master every level (the paper's
    /// protocol). Switching this off is part of the `A-1` ablation: the
    /// update maths does not need the master copy, so this isolates the
    /// cost of the bookkeeping traffic.
    pub collect_last_rows: bool,
    /// Compute the auxiliary quantities `h` at the master and broadcast
    /// them (the paper's protocol). When off, every rank derives `h` from
    /// the already-broadcast level column locally — same arithmetic, no
    /// extra communication round.
    pub centralized_h: bool,
    /// Stream the per-level column broadcast through the pipelined binary
    /// tree (`O(α·log N + β·n)`) instead of the binomial tree
    /// (`O((α + β·n)·log N)`).
    pub pipelined_bcast: bool,
}

impl ImepOptions {
    /// The paper's protocol, verbatim.
    pub fn paper() -> Self {
        Self {
            collect_last_rows: true,
            centralized_h: true,
            pipelined_bcast: false,
        }
    }

    /// The tuned variant a production IMeP would run (and the one the
    /// harness uses for figure generation): no bookkeeping returns,
    /// locally derived `h`, pipelined broadcasts.
    pub fn optimized() -> Self {
        Self {
            collect_last_rows: false,
            centralized_h: false,
            pipelined_bcast: true,
        }
    }
}

impl Default for ImepOptions {
    fn default() -> Self {
        Self::paper()
    }
}

/// Cyclic column distribution: owner of global table column `c`.
pub(crate) fn owner(c: usize, nranks: usize) -> usize {
    c % nranks
}

const MASTER: usize = 0;

/// The fully reduced inhibition table held by one rank: its share of the
/// left block, which after the reduction equals the corresponding columns
/// of `A⁻ᵀ`. Because the reduction is independent of the right-hand side,
/// one [`reduce_table`] pays for any number of [`ReducedTable::solve`]
/// calls — each solve is one broadcast of `b`, local dot products, a gather
/// and a broadcast of `x` (`O(n²/N)` work, `O(n)` traffic).
pub struct ReducedTable {
    n: usize,
    nranks: usize,
    /// `(global left-column index, column data)` for my columns.
    my_left: Vec<(usize, Vec<f64>)>,
    /// Master-side archive of the per-level reduced rows (the paper's
    /// last-row returns); empty unless `collect_last_rows` was on.
    pub archived_rows: Vec<Vec<f64>>,
}

impl ReducedTable {
    /// Solve for one right-hand side (held by the master; other ranks may
    /// pass anything). Returns the replicated solution. Collective.
    pub fn solve(&self, ctx: &mut RankCtx, comm: &Comm, b: &[f64]) -> Vec<f64> {
        let n = self.n;
        let me = comm.rank();
        let b_own = if me == MASTER {
            assert_eq!(b.len(), n, "rhs length mismatch");
            Some(b.to_vec())
        } else {
            None
        };
        // Read-only everywhere: every rank dots against the one shared
        // replica instead of unwrapping a private copy.
        let b_rep = ctx.bcast_shared_f64(comm, MASTER, b_own);
        let my_x: Vec<f64> = self
            .my_left
            .iter()
            .map(|(_, col)| ddot(col, &b_rep))
            .collect();
        ctx.compute(
            flops::dgemv(my_x.len(), n),
            flops::bytes_f64(n * my_x.len()),
        );
        let gathered = ctx.gather_shared_f64(comm, MASTER, &my_x);
        let mut x = vec![0.0; n];
        if let Some(chunks) = gathered {
            for (r, chunk) in chunks.iter().enumerate() {
                // Rank r owns left columns r, r+N, r+2N, … in that order.
                for (t, &v) in chunk.iter().enumerate() {
                    let j = r + t * self.nranks;
                    debug_assert!(j < n);
                    x[j] = v;
                }
            }
        }
        ctx.bcast_f64(comm, MASTER, &mut x);
        x
    }
}

/// Run the IMeP reduction (INITIME + all levels) without consuming a
/// right-hand side. Collective over `comm`.
pub fn reduce_table(
    ctx: &mut RankCtx,
    comm: &Comm,
    sys: &LinearSystem,
    opts: ImepOptions,
) -> Result<ReducedTable, ImeError> {
    let n = sys.n();
    let nranks = comm.size();
    let me = comm.rank();

    // Diagonal check is local and identical on every rank (replicated
    // input), so all ranks agree before any communication.
    for i in 0..n {
        if sys.a[(i, i)] == 0.0 {
            return Err(ImeError::ZeroDiagonal { row: i });
        }
    }

    // ----- INITIME: build my columns of T(n) -----
    // Left column j is e_j/a_jj (kept dense for uniform updates); right
    // column n+j holds a_{j,i}/a_{i,i}.
    let mut my_cols: Vec<(usize, Vec<f64>)> = (0..2 * n)
        .filter(|&c| owner(c, nranks) == me)
        .map(|c| (c, init_column(&sys.a, c).expect("diagonal checked above")))
        .collect();
    ctx.compute(
        (n * my_cols.len()) as u64 / 2,
        flops::bytes_f64(n * my_cols.len()),
    );

    // Master's archive of reduced rows (row l at each level).
    let mut archived_rows: Vec<Vec<f64>> = Vec::new();

    // ----- levels -----
    for l in (0..n).rev() {
        // 1. Owner of column n+l broadcasts it. All downstream uses are
        //    reads, so the binomial branch hands every rank the one shared
        //    replica; the pipelined branch assembles chunks into an owned
        //    buffer by construction.
        let last_col_owner = owner(n + l, nranks);
        let own_col = || {
            let (_, col) = my_cols
                .iter()
                .find(|(c, _)| *c == n + l)
                .expect("owner must hold the level column");
            col.clone()
        };
        let c_lvl: Arc<Vec<f64>> = if opts.pipelined_bcast {
            let mut buf = if me == last_col_owner {
                own_col()
            } else {
                Vec::new()
            };
            ctx.bcast_pipelined_f64(comm, last_col_owner, &mut buf, BCAST_CHUNK);
            Arc::new(buf)
        } else {
            let data = (me == last_col_owner).then(own_col);
            ctx.bcast_shared_f64(comm, last_col_owner, data)
        };

        // 2. Auxiliary quantities h^(l): computed at the master and
        //    broadcast (paper protocol), or derived locally by every rank
        //    from the column it just received (optimised variant). A failed
        //    level is signalled in-band / detected identically everywhere.
        //    Under the paper protocol, h_l travels as the first element and
        //    is read in place (no O(n) shift, no unwrap copy).
        let (hl, h_buf, h_off): (f64, Arc<Vec<f64>>, usize) = if opts.centralized_h {
            let h = if me == MASTER {
                let piv = c_lvl[l];
                Some(if piv == 0.0 {
                    vec![f64::NAN] // failure sentinel
                } else {
                    let mut h = Vec::with_capacity(n + 1);
                    h.push(1.0 / piv); // h_l as first element
                    h.extend(c_lvl.iter().map(|&v| v / piv));
                    h
                })
            } else {
                None
            };
            if me == MASTER {
                ctx.compute((n + 1) as u64, flops::bytes_f64(n));
            }
            let h = ctx.bcast_shared_f64(comm, MASTER, h);
            if h.len() == 1 {
                return Err(ImeError::ZeroInhibitor { level: l });
            }
            (h[0], h, 1)
        } else {
            let piv = c_lvl[l];
            if piv == 0.0 {
                return Err(ImeError::ZeroInhibitor { level: l });
            }
            let h: Vec<f64> = c_lvl.iter().map(|&v| v / piv).collect();
            ctx.compute((n + 1) as u64, flops::bytes_f64(n));
            (1.0 / piv, Arc::new(h), 0)
        };
        let h = &h_buf[h_off..];

        // 3. Fundamental update on my active columns (left `l..n`, right
        //    `< l`); column n+l itself is eliminated to a basis vector.
        let mut touched = 0usize;
        for (c, col) in my_cols.iter_mut() {
            let active = if *c < n { *c >= l } else { *c - n <= l };
            if !active {
                continue;
            }
            if *c == n + l {
                for (i, v) in col.iter_mut().enumerate() {
                    *v = if i == l { 1.0 } else { 0.0 };
                }
                continue;
            }
            // Branch-free sweep shared with the sequential and FT paths.
            crate::ft::apply_level(col, l, h, hl);
            touched += 1;
        }
        ctx.compute(
            2 * (n * touched) as u64,
            flops::bytes_f64(2 * n * touched) / LEVEL_FUSE,
        );

        // 4. Slaves send their modified row-l entries to the master.
        if opts.collect_last_rows {
            let row_l: Vec<f64> = my_cols
                .iter()
                .filter(|(c, _)| if *c < n { *c >= l } else { *c - n <= l })
                .map(|(_, col)| col[l])
                .collect();
            if let Some(chunks) = ctx.gather_f64(comm, MASTER, &row_l) {
                archived_rows.push(chunks.into_iter().flatten().collect());
            }
        }
    }

    let my_left: Vec<(usize, Vec<f64>)> = my_cols.into_iter().filter(|(c, _)| *c < n).collect();
    Ok(ReducedTable {
        n,
        nranks,
        my_left,
        archived_rows,
    })
}

/// Solve a replicated system with IMeP over all ranks of `comm`. Returns
/// the solution, replicated on every rank.
pub fn solve_imep(
    ctx: &mut RankCtx,
    comm: &Comm,
    sys: &LinearSystem,
    opts: ImepOptions,
) -> Result<Vec<f64>, ImeError> {
    let table = reduce_table(ctx, comm, sys, opts)?;
    Ok(table.solve(ctx, comm, &sys.b))
}

/// Solve the same system for several right-hand sides with a single
/// reduction (the decomposition is RHS-independent — one of IMe's selling
/// points for repeated solves such as transient circuit analysis).
pub fn solve_imep_multi(
    ctx: &mut RankCtx,
    comm: &Comm,
    sys: &LinearSystem,
    bs: &[Vec<f64>],
    opts: ImepOptions,
) -> Result<Vec<Vec<f64>>, ImeError> {
    let table = reduce_table(ctx, comm, sys, opts)?;
    Ok(bs.iter().map(|b| table.solve(ctx, comm, b)).collect())
}

/// Per-level traffic of this implementation, counted the same way the
/// simulator counts (tree broadcast/gather = `N−1` point-to-point
/// messages). Used by tests to pin the simulated counters exactly, and by
/// the analytic model.
pub fn predict_traffic(n: usize, nranks: usize, opts: ImepOptions) -> (u64, u64) {
    let nn = n as u64;
    let edges = (nranks as u64).saturating_sub(1);
    if edges == 0 {
        return (0, 0);
    }
    let mut msgs = 0u64;
    let mut elems = 0u64;
    // init: b broadcast.
    msgs += edges;
    elems += edges * nn;
    for l in 0..n {
        // Column broadcast (size n).
        if opts.pipelined_bcast {
            // Binary-tree pipeline: header + chunks per edge.
            let nchunks = n.div_ceil(BCAST_CHUNK).max(1) as u64;
            msgs += edges * (nchunks + 1);
            elems += edges * (nn + 1); // chunks total n elems + 1-word header
        } else {
            msgs += edges;
            elems += edges * nn;
        }
        // h broadcast (size n+1) under the paper protocol.
        if opts.centralized_h {
            msgs += edges;
            elems += edges * (nn + 1);
        }
        if opts.collect_last_rows {
            // linear gather: each slave sends its active-column row entries.
            msgs += edges;
            let active = (n - l) + (l + 1); // left l..n plus right 0..=l
                                            // Split of active columns across ranks: master's share excluded.
            let mut master_share = 0u64;
            for c in 0..2 * n {
                let a = if c < n { c >= l } else { c - n <= l };
                if a && owner(c, nranks) == 0 {
                    master_share += 1;
                }
            }
            elems += active as u64 - master_share;
        }
    }
    // termination: gather x components + broadcast x.
    msgs += 2 * edges;
    let master_left = (0..n).filter(|&c| owner(c, nranks) == 0).count() as u64;
    elems += (nn - master_left) + edges * nn;
    (msgs, elems)
}
