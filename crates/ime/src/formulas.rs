//! The paper's closed-form cost characterisation of IMe/IMeP (§2.1), plus
//! the corresponding forms for this crate's implementation.

/// Sequential memory occupation in f64 elements: `2n² + 3n`
/// (the n×2n table, the auxiliary vector h, x and b).
pub fn memory_ime(n: usize) -> u64 {
    let n = n as u64;
    2 * n * n + 3 * n
}

/// Parallel memory occupation across all N nodes: `2n² + 2nN + 3n`
/// (paper §2.1 — the table is partitioned, the n-sized work vectors are
/// replicated per node).
pub fn memory_imep(n: usize, nranks: usize) -> u64 {
    let n_ = n as u64;
    let nr = nranks as u64;
    2 * n_ * n_ + 2 * n_ * nr + 3 * n_
}

/// The paper's total message count for IMeP:
/// `M = n² + 2(N−1)n + 2(N−1)`.
pub fn messages_imep_paper(n: usize, nranks: usize) -> u64 {
    let n_ = n as u64;
    let nm1 = nranks as u64 - 1;
    n_ * n_ + 2 * nm1 * n_ + 2 * nm1
}

/// The paper's total message volume (f64 elements) for IMeP:
/// `V = (N+2)n² + 2(N−1)n`.
pub fn volume_imep_paper(n: usize, nranks: usize) -> u64 {
    let n_ = n as u64;
    let nr = nranks as u64;
    (nr + 2) * n_ * n_ + 2 * (nr - 1) * n_
}

/// The paper's flop model: `3/2·n³ + O(n²)`.
pub fn flops_ime_paper(n: usize) -> u64 {
    greenla_linalg::flops::ime_paper_model(n)
}

/// This implementation's measured flop model: `2n³ + O(n²)` (the exact
/// reconstruction keeps the whole left block live; see the crate docs).
pub fn flops_ime_ours(n: usize) -> u64 {
    let n = n as f64;
    (2.0 * n * n * n + 5.0 * n * n) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_formulas_at_reference_point() {
        // Spot values computed by hand for n=4, N=3.
        assert_eq!(messages_imep_paper(4, 3), 16 + 2 * 2 * 4 + 2 * 2);
        assert_eq!(volume_imep_paper(4, 3), 5 * 16 + 2 * 2 * 4);
        assert_eq!(memory_ime(10), 230);
        assert_eq!(memory_imep(10, 4), 200 + 80 + 30);
    }

    #[test]
    fn parallel_memory_exceeds_sequential() {
        for nranks in [2, 4, 16, 144] {
            assert!(memory_imep(100, nranks) > memory_ime(100));
        }
    }

    #[test]
    fn volume_dominated_by_column_broadcasts() {
        // V grows linearly in N at fixed n (the (N+2)n² term).
        let v1 = volume_imep_paper(64, 4) as f64;
        let v2 = volume_imep_paper(64, 8) as f64;
        assert!(v2 / v1 > 1.5 && v2 / v1 < 2.0);
    }

    #[test]
    fn our_flops_exceed_paper_model_by_one_third() {
        let n = 500;
        let ratio = flops_ime_ours(n) as f64 / flops_ime_paper(n) as f64;
        assert!((ratio - 4.0 / 3.0).abs() < 0.02, "ratio {ratio}");
    }
}
