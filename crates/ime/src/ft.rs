//! Checksum-based fault tolerance for IMeP.
//!
//! The paper motivates IMe partly by its "good integrated low-cost multiple
//! fault tolerance, which is more efficient than the checkpoint/restart
//! technique usually applied in Gaussian Elimination" (Artioli, Loreti &
//! Ciampolini, SRDS 2019). This module demonstrates the mechanism the
//! column-wise decomposition enables: the per-level fundamental update is a
//! *row operation*, hence linear across columns, so a checksum column
//! `S = Σ_c t_{·,c}` maintained with the **same** update stays equal to the
//! sum of all table columns at every level. When a rank loses a column, the
//! survivors' sum subtracted from `S` reconstructs it exactly — no
//! checkpoint, no restart, one extra column of arithmetic per level.
//!
//! [`solve_imep_ft`] injects an (optional) deterministic single-column loss
//! at a chosen level and recovers it in-band; the returned solution is
//! bit-for-bit the fault-free one whenever recovery arithmetic is exact and
//! matches to rounding otherwise.

use crate::error::ImeError;
use crate::par::owner;
use crate::table::init_column;
use greenla_linalg::blas1::{daxpy, ddot};
use greenla_linalg::flops;
use greenla_linalg::generate::LinearSystem;
use greenla_mpi::{Comm, RankCtx};

/// A deterministic fault to inject: when the level loop reaches `level`
/// (counting down), the owner of table `column` loses that column's data
/// before the level is processed.
#[derive(Clone, Copy, Debug)]
pub struct FailureSpec {
    pub level: usize,
    pub column: usize,
}

const MASTER: usize = 0;
const RECOVER_TAG: u64 = 77;

/// IMeP with checksum protection and optional fault injection. Returns the
/// replicated solution.
///
/// When `failure` is `None` and the rank context carries an enabled
/// [fault plan](greenla_mpi::FaultPlan) with a column loss, the loss is
/// taken from the plan instead (clamped into range, so one plan is
/// portable across problem sizes) — the solver then recovers from a
/// *runtime* fault it did not stage itself, and the victim rank accounts
/// the injection and the recovery in its `FaultReport`.
///
/// # Checksum invariant
///
/// At every level boundary the master's checksum column satisfies
/// `S = Σ_{c=0}^{2n-1} t_{·,c}` exactly (in exact arithmetic; to rounding
/// in floating point). It holds because `apply_level` is a row
/// operation — linear across columns — so applying it to `S` equals
/// applying it to every column and summing, with one correction for the
/// level column `n+l` that is snapped to `e_l` rather than updated. Any
/// single lost column is therefore `S − Σ_{c≠lost} t_{·,c}` at the instant
/// of loss, which is what the recovery below computes.
pub fn solve_imep_ft(
    ctx: &mut RankCtx,
    comm: &Comm,
    sys: &LinearSystem,
    failure: Option<FailureSpec>,
) -> Result<Vec<f64>, ImeError> {
    let n = sys.n();
    let nranks = comm.size();
    let me = comm.rank();
    // A runtime-planned loss (from the machine's fault plan) fills in for a
    // caller-staged one. Every rank reads the same plan, so the control flow
    // below stays collective.
    let mut planned = false;
    let failure = failure.or_else(|| {
        if n == 0 || !ctx.faults_enabled() {
            return None;
        }
        ctx.faults_mut().app_column_loss().map(|(l, c)| {
            planned = true;
            FailureSpec {
                level: l % n,
                column: c % (2 * n),
            }
        })
    });
    if let Some(f) = failure {
        assert!(f.level < n && f.column < 2 * n, "failure spec out of range");
    }
    for i in 0..n {
        if sys.a[(i, i)] == 0.0 {
            return Err(ImeError::ZeroDiagonal { row: i });
        }
    }

    let mut my_cols: Vec<(usize, Vec<f64>)> = (0..2 * n)
        .filter(|&c| owner(c, nranks) == me)
        .map(|c| (c, init_column(&sys.a, c).expect("diagonal checked above")))
        .collect();
    ctx.compute(
        (n * my_cols.len()) as u64 / 2,
        flops::bytes_f64(n * my_cols.len()),
    );

    let mut b = if me == MASTER {
        sys.b.clone()
    } else {
        Vec::new()
    };
    ctx.bcast_f64(comm, MASTER, &mut b);

    // ----- checksum initialisation: S = Σ_c t_{·,c}, kept by the master -----
    let local_sum = sum_columns(&my_cols, n, None);
    ctx.compute(flops::daxpy(n) * my_cols.len() as u64 / 2, 0);
    let mut checksum = ctx
        .reduce_sum_owned_f64(comm, MASTER, local_sum)
        .unwrap_or_default();

    for l in (0..n).rev() {
        // ----- fault injection + recovery -----
        if let Some(f) = failure {
            if f.level == l {
                let victim = owner(f.column, nranks);
                if me == victim {
                    // The column's data is gone.
                    let slot = my_cols
                        .iter_mut()
                        .find(|(c, _)| *c == f.column)
                        .expect("victim owns the failed column");
                    slot.1 = vec![f64::NAN; n];
                    if planned {
                        ctx.faults_mut().record_column_loss_injected();
                        ctx.trace_instant("fault:column_loss");
                    }
                }
                // Survivor sum excludes the lost column.
                let surv = sum_columns(&my_cols, n, Some(f.column));
                let total = ctx.reduce_sum_owned_f64(comm, MASTER, surv);
                if me == MASTER {
                    let total = total.expect("master receives the reduction");
                    let rec: Vec<f64> = checksum.iter().zip(&total).map(|(s, t)| s - t).collect();
                    ctx.compute(flops::daxpy(n), 0);
                    if victim == MASTER {
                        restore(&mut my_cols, f.column, rec);
                        if planned {
                            ctx.faults_mut().record_column_loss_recovered();
                            ctx.trace_instant("fault:column_loss_recovered");
                        }
                    } else {
                        ctx.send_f64(comm, victim, RECOVER_TAG, &rec);
                    }
                } else if me == victim {
                    let rec = ctx.recv_f64(comm, MASTER, RECOVER_TAG);
                    restore(&mut my_cols, f.column, rec);
                    if planned {
                        ctx.faults_mut().record_column_loss_recovered();
                        ctx.trace_instant("fault:column_loss_recovered");
                    }
                }
            }
        }

        // ----- ordinary IMeP level with checksum maintenance -----
        let last_col_owner = owner(n + l, nranks);
        let mut c_lvl: Vec<f64> = if me == last_col_owner {
            my_cols.iter().find(|(c, _)| *c == n + l).unwrap().1.clone()
        } else {
            Vec::new()
        };
        ctx.bcast_f64(comm, last_col_owner, &mut c_lvl);

        let mut h = if me == MASTER {
            let piv = c_lvl[l];
            if piv == 0.0 {
                vec![f64::NAN]
            } else {
                let mut h = Vec::with_capacity(n + 1);
                h.push(1.0 / piv);
                h.extend(c_lvl.iter().map(|&v| v / piv));
                h
            }
        } else {
            Vec::new()
        };
        ctx.bcast_f64(comm, MASTER, &mut h);
        if h.len() == 1 {
            return Err(ImeError::ZeroInhibitor { level: l });
        }
        let hl = h[0];
        let h = &h[1..];

        let mut touched = 0usize;
        for (c, col) in my_cols.iter_mut() {
            let active = if *c < n { *c >= l } else { *c - n <= l };
            if !active {
                continue;
            }
            if *c == n + l {
                for (i, v) in col.iter_mut().enumerate() {
                    *v = if i == l { 1.0 } else { 0.0 };
                }
                continue;
            }
            apply_level(col, l, h, hl);
            touched += 1;
        }
        ctx.compute(
            2 * (n * touched) as u64,
            flops::bytes_f64(2 * n * touched) / crate::par::LEVEL_FUSE,
        );

        if me == MASTER {
            // The same row operation keeps S the sum of all columns — with
            // one correction: column n+l was snapped to e_l instead of
            // being updated, so S must absorb the difference.
            let mut cl = c_lvl.clone();
            apply_level(&mut cl, l, h, hl);
            apply_level(&mut checksum, l, h, hl);
            for i in 0..n {
                let canon = if i == l { 1.0 } else { 0.0 };
                checksum[i] += canon - cl[i];
            }
            ctx.compute(3 * flops::daxpy(n), 0);
        }
    }

    let my_x: Vec<f64> = my_cols
        .iter()
        .filter(|(c, _)| *c < n)
        .map(|(_, col)| ddot(col, &b))
        .collect();
    ctx.compute(
        flops::dgemv(my_x.len(), n),
        flops::bytes_f64(n * my_x.len()),
    );
    let gathered = ctx.gather_f64(comm, MASTER, &my_x);
    let mut x = vec![0.0; n];
    if let Some(chunks) = gathered {
        for (r, chunk) in chunks.into_iter().enumerate() {
            for (t, v) in chunk.into_iter().enumerate() {
                x[r + t * nranks] = v;
            }
        }
    }
    ctx.bcast_f64(comm, MASTER, &mut x);
    Ok(x)
}

fn sum_columns(cols: &[(usize, Vec<f64>)], n: usize, exclude: Option<usize>) -> Vec<f64> {
    let mut s = vec![0.0; n];
    for (c, col) in cols {
        if Some(*c) == exclude {
            continue;
        }
        for i in 0..n {
            s[i] += col[i];
        }
    }
    s
}

fn restore(cols: &mut [(usize, Vec<f64>)], column: usize, data: Vec<f64>) {
    let slot = cols
        .iter_mut()
        .find(|(c, _)| *c == column)
        .expect("restored column must be owned");
    slot.1 = data;
}

/// One column's fundamental update, branch-free: the rows above and below
/// `l` are two contiguous daxpy runs (no per-element `i != l` test), shared
/// by the sequential, parallel and fault-tolerant paths.
pub(crate) fn apply_level(col: &mut [f64], l: usize, h: &[f64], hl: f64) {
    let tl = col[l];
    let (above, rest) = col.split_at_mut(l);
    daxpy(-tl, &h[..l], above);
    daxpy(-tl, &h[l + 1..], &mut rest[1..]);
    rest[0] = hl * tl;
}
