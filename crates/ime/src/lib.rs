#![forbid(unsafe_code)]
//! # greenla-ime
//!
//! The **Inhibition Method** (IMe) linear-system solver — the iterative,
//! exact, non-pivoting algorithm of Ciampolini (1963) / Artioli & Filippetti
//! (2001) that the paper profiles against ScaLAPACK — in sequential form and
//! in the column-wise parallel form **IMeP** over the simulated MPI runtime.
//!
//! ## Reconstruction note
//!
//! The paper defines the inhibition table
//! `T(n) = [diag(1/aᵢᵢ) | diag(1/aᵢᵢ)·Aᵀ]` and the per-level communication
//! pattern (owner of the level's last column broadcasts it; the master
//! computes and broadcasts the auxiliary quantities `h`; slaves return their
//! modified last-row entries to the master), but not the fundamental
//! formula itself. This crate reconstructs an *exact* method with that
//! table and that dataflow: level `l` (from `n−1` down to `0`) eliminates
//! right-block column `l` using row `l` with multipliers
//! `hᵢ = t_{i,n+l}/t_{l,n+l}` (the auxiliary quantities), after which the
//! right block is the identity and the left block equals `A⁻ᵀ`, so each
//! left-column owner produces its solution components with a local dot
//! product `x_j = ⟨t_{·,j}, b⟩` — the locality that makes the column-wise
//! scheme "fit the integration with the fault tolerance requirements", as
//! the paper puts it. Exactness is verified against LU in the tests; the
//! measured arithmetic constant is ≈ 2n³ against the paper's reported
//! `3/2·n³ + O(n²)` (see EXPERIMENTS.md for the comparison).

pub mod error;
pub mod formulas;
pub mod ft;
pub mod par;
pub mod seq;
pub mod table;

pub use error::ImeError;
pub use par::{reduce_table, solve_imep, solve_imep_multi, ImepOptions, ReducedTable};
pub use seq::solve_seq;
