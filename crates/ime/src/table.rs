//! Construction of the inhibition table `T(n)` (the paper's INITIME
//! procedure).

use crate::error::ImeError;
use greenla_linalg::Matrix;

/// Build the full `n × 2n` inhibition table
/// `T(n) = [diag(1/aᵢᵢ) | diag(1/aᵢᵢ)·Aᵀ]`:
/// left block `t_{i,i} = 1/aᵢᵢ` (zero elsewhere), right block
/// `t_{i,n+j} = a_{j,i}/a_{i,i}` (so `t_{i,n+i} = 1`).
pub fn init_table(a: &Matrix) -> Result<Matrix, ImeError> {
    assert!(a.is_square(), "IMe needs a square system");
    let n = a.rows();
    for i in 0..n {
        if a[(i, i)] == 0.0 {
            return Err(ImeError::ZeroDiagonal { row: i });
        }
    }
    let mut t = Matrix::zeros(n, 2 * n);
    for i in 0..n {
        t[(i, i)] = 1.0 / a[(i, i)];
        for j in 0..n {
            t[(i, n + j)] = a[(j, i)] / a[(i, i)];
        }
    }
    Ok(t)
}

/// One column of the table, built standalone (what each IMeP rank computes
/// for the columns it owns, without materialising the full table).
///
/// `col < n` selects a left-block column, `col ≥ n` a right-block column.
pub fn init_column(a: &Matrix, col: usize) -> Result<Vec<f64>, ImeError> {
    let n = a.rows();
    assert!(col < 2 * n, "column {col} out of table range");
    let mut v = vec![0.0; n];
    if col < n {
        if a[(col, col)] == 0.0 {
            return Err(ImeError::ZeroDiagonal { row: col });
        }
        v[col] = 1.0 / a[(col, col)];
    } else {
        let j = col - n;
        for i in 0..n {
            if a[(i, i)] == 0.0 {
                return Err(ImeError::ZeroDiagonal { row: i });
            }
            v[i] = a[(j, i)] / a[(i, i)];
        }
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenla_linalg::generate;

    #[test]
    fn table_matches_paper_definition() {
        let sys = generate::diag_dominant(6, 1);
        let a = &sys.a;
        let t = init_table(a).unwrap();
        assert_eq!(t.rows(), 6);
        assert_eq!(t.cols(), 12);
        for i in 0..6 {
            assert!((t[(i, i)] - 1.0 / a[(i, i)]).abs() < 1e-15);
            assert_eq!(t[(i, (i + 1) % 6)], 0.0);
            assert!(
                (t[(i, 6 + i)] - 1.0).abs() < 1e-15,
                "right-block diagonal must be 1"
            );
            for j in 0..6 {
                assert!((t[(i, 6 + j)] - a[(j, i)] / a[(i, i)]).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn columns_match_full_table() {
        let sys = generate::circuit_network(8, 2);
        let t = init_table(&sys.a).unwrap();
        for c in 0..16 {
            let col = init_column(&sys.a, c).unwrap();
            for i in 0..8 {
                assert_eq!(col[i], t[(i, c)], "column {c} row {i}");
            }
        }
    }

    #[test]
    fn zero_diagonal_rejected() {
        let mut a = Matrix::identity(3);
        a[(1, 1)] = 0.0;
        assert_eq!(init_table(&a), Err(ImeError::ZeroDiagonal { row: 1 }));
        assert_eq!(init_column(&a, 1), Err(ImeError::ZeroDiagonal { row: 1 }));
    }
}
