//! Sequential Inhibition Method.

use crate::error::ImeError;
use crate::table::init_table;
use greenla_linalg::blas1::ddot;
use greenla_linalg::generate::LinearSystem;

/// Statistics of a sequential IMe run (used by tests verifying the
/// complexity claims and by the analytic model's calibration).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ImeStats {
    /// Floating-point operations executed.
    pub flops: u64,
    /// Levels processed (= n).
    pub levels: usize,
}

/// Solve `A·x = b` with the sequential Inhibition Method. Returns the
/// solution and run statistics.
///
/// Level `l` (descending) eliminates right-block column `l` with row `l`:
/// auxiliary quantities `hᵢ = t_{i,n+l}/t_{l,n+l}` and `h_l = 1/t_{l,n+l}`,
/// update `t_{i,j} ← t_{i,j} − hᵢ·t_{l,j}` for `i ≠ l` then
/// `t_{l,j} ← h_l·t_{l,j}`, over the active window (left columns `l..n`,
/// right columns `0..l` — eliminated right columns are already canonical
/// and the left block has no fill below the window). Afterwards the left
/// block equals `A⁻ᵀ` and `x_j = ⟨t_{·,j}, b⟩`.
pub fn solve_seq(sys: &LinearSystem) -> Result<(Vec<f64>, ImeStats), ImeError> {
    let n = sys.n();
    let mut t = init_table(&sys.a)?;
    let mut stats = ImeStats {
        flops: 2 * (n * n) as u64,
        levels: n,
    }; // INITIME divisions & scales
    let mut h = vec![0.0; n];

    for l in (0..n).rev() {
        let piv = t[(l, n + l)];
        if piv == 0.0 {
            return Err(ImeError::ZeroInhibitor { level: l });
        }
        // Auxiliary quantities h^(l).
        for i in 0..n {
            h[i] = t[(i, n + l)] / piv;
        }
        let hl = 1.0 / piv;
        stats.flops += n as u64 + 1;
        // Active columns: left l..n, right 0..l (global n..n+l).
        let update_col = |t: &mut greenla_linalg::Matrix, c: usize, h: &[f64]| {
            crate::ft::apply_level(t.col_mut(c), l, h, hl);
        };
        for c in l..n {
            update_col(&mut t, c, &h);
        }
        for j in 0..l {
            update_col(&mut t, n + j, &h);
        }
        stats.flops += 2 * (n as u64) * ((n - l) + l) as u64;
        // Column n+l is eliminated: set it to the canonical basis vector so
        // rounding residue cannot leak into later levels.
        for i in 0..n {
            t[(i, n + l)] = if i == l { 1.0 } else { 0.0 };
        }
    }

    // Left block is now A^{-T}: x_j = ⟨t_{·,j}, b⟩.
    let mut x = vec![0.0; n];
    for (j, xj) in x.iter_mut().enumerate() {
        *xj = ddot(t.col(j), &sys.b);
    }
    stats.flops += 2 * (n * n) as u64;
    Ok((x, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenla_linalg::generate;
    use greenla_linalg::Matrix;

    #[test]
    fn solves_generated_systems_exactly() {
        for (n, seed) in [(1, 0), (2, 1), (5, 2), (20, 3), (64, 4), (120, 5)] {
            let sys = generate::diag_dominant(n, seed);
            let (x, _) = solve_seq(&sys).unwrap();
            let r = sys.residual(&x);
            assert!(r < 1e-12, "residual {r} for n={n}");
            assert!(sys.error_vs_ref(&x).unwrap() < 1e-8);
        }
    }

    #[test]
    fn solves_circuit_and_spd_systems() {
        let c = generate::circuit_network(40, 7);
        let (x, _) = solve_seq(&c).unwrap();
        assert!(c.residual(&x) < 1e-12);
        let s = generate::spd(30, 8);
        let (x, _) = solve_seq(&s).unwrap();
        assert!(s.residual(&x) < 1e-11);
    }

    #[test]
    fn agrees_with_lu_reference() {
        let sys = generate::diag_dominant(50, 9);
        let (x_ime, _) = solve_seq(&sys).unwrap();
        let x_lu = greenla_scalapack_free_gesv(&sys);
        for (a, b) in x_ime.iter().zip(&x_lu) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    /// Small local LU so this crate's tests don't depend on
    /// greenla-scalapack (which would be a dependency cycle in dev-deps).
    fn greenla_scalapack_free_gesv(sys: &generate::LinearSystem) -> Vec<f64> {
        let n = sys.n();
        let mut a = sys.a.clone();
        let mut b = sys.b.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            let p = (k..n)
                .max_by(|&i, &j| a[(i, k)].abs().partial_cmp(&a[(j, k)].abs()).unwrap())
                .unwrap();
            a.swap_rows(k, p, 0, n);
            b.swap(k, p);
            perm.swap(k, p);
            for i in k + 1..n {
                let m = a[(i, k)] / a[(k, k)];
                for j in k..n {
                    let v = a[(k, j)];
                    a[(i, j)] -= m * v;
                }
                b[i] -= m * b[k];
            }
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = b[i];
            for j in i + 1..n {
                s -= a[(i, j)] * x[j];
            }
            x[i] = s / a[(i, i)];
        }
        x
    }

    #[test]
    fn flop_count_scales_as_2_n_cubed() {
        // The reconstruction's measured constant (documented in
        // EXPERIMENTS.md against the paper's 3/2).
        let sys = generate::diag_dominant(100, 10);
        let (_, stats) = solve_seq(&sys).unwrap();
        let c = stats.flops as f64 / 100f64.powi(3);
        assert!((1.8..=2.3).contains(&c), "constant {c}");
        // And it is superlinear vs a smaller n with the same constant.
        let sys2 = generate::diag_dominant(50, 10);
        let (_, s2) = solve_seq(&sys2).unwrap();
        let c2 = s2.flops as f64 / 50f64.powi(3);
        assert!((c - c2).abs() < 0.25, "constants diverge: {c} vs {c2}");
    }

    #[test]
    fn zero_inhibitor_detected() {
        // Non-zero diagonal but the method hits a vanishing inhibitor:
        // a[(1,1)] chosen so that level-1 elimination zeroes the pivot of
        // level 0. Easiest robust case: a singular matrix with non-zero
        // diagonal.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let sys = generate::LinearSystem {
            a,
            b: vec![1.0, 1.0],
            x_ref: None,
        };
        match solve_seq(&sys) {
            Err(ImeError::ZeroInhibitor { .. }) => {}
            other => panic!("expected ZeroInhibitor, got {other:?}"),
        }
    }

    #[test]
    fn zero_diagonal_rejected_up_front() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let sys = generate::LinearSystem {
            a,
            b: vec![1.0, 1.0],
            x_ref: None,
        };
        assert_eq!(solve_seq(&sys), Err(ImeError::ZeroDiagonal { row: 0 }));
    }

    #[test]
    fn stats_levels_equals_n() {
        let sys = generate::diag_dominant(17, 12);
        let (_, stats) = solve_seq(&sys).unwrap();
        assert_eq!(stats.levels, 17);
    }
}
