//! Integration tests for the parallel Inhibition Method (IMeP) and its
//! fault-tolerance extension on the simulated cluster.

use greenla_cluster::placement::Placement;
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_ime::ft::{solve_imep_ft, FailureSpec};
use greenla_ime::par::predict_traffic;
use greenla_ime::{solve_imep, solve_seq, ImeError, ImepOptions};
use greenla_linalg::generate;
use greenla_mpi::Machine;

fn machine(ranks: usize, seed: u64) -> Machine {
    let spec = ClusterSpec::test_cluster(8, 4);
    let placement = Placement::packed(&spec.node, ranks).unwrap();
    Machine::new(spec, placement, PowerModel::deterministic(), seed).unwrap()
}

#[test]
fn imep_matches_sequential_exactly() {
    let sys = generate::diag_dominant(33, 4);
    let (x_seq, _) = solve_seq(&sys).unwrap();
    for ranks in [1, 2, 4, 7] {
        let m = machine(ranks, 1);
        let out = m.run(|ctx| {
            let world = ctx.world();
            solve_imep(ctx, &world, &sys, ImepOptions::default()).unwrap()
        });
        for x in &out.results {
            for (a, b) in x.iter().zip(&x_seq) {
                assert!((a - b).abs() < 1e-12, "ranks={ranks}: {a} vs {b}");
            }
        }
    }
}

#[test]
fn imep_solves_various_systems() {
    for (sys, name) in [
        (generate::circuit_network(24, 2), "circuit"),
        (generate::spd(18, 3), "spd"),
        (generate::poisson2d(5, 0), "poisson"),
    ] {
        let m = machine(6, 2);
        let out = m.run(|ctx| {
            let world = ctx.world();
            solve_imep(ctx, &world, &sys, ImepOptions::default()).unwrap()
        });
        let r = sys.residual(&out.results[0]);
        assert!(r < 1e-11, "{name}: residual {r}");
    }
}

#[test]
fn imep_results_replicated_across_ranks() {
    let sys = generate::diag_dominant(20, 5);
    let m = machine(5, 3);
    let out = m.run(|ctx| {
        let world = ctx.world();
        solve_imep(ctx, &world, &sys, ImepOptions::default()).unwrap()
    });
    for x in &out.results[1..] {
        assert_eq!(x, &out.results[0]);
    }
}

#[test]
fn imep_traffic_matches_prediction_exactly() {
    let n = 24;
    let sys = generate::diag_dominant(n, 6);
    for opts in [ImepOptions::paper(), ImepOptions::optimized()] {
        for ranks in [2, 3, 6] {
            let m = machine(ranks, 4);
            m.run(|ctx| {
                let world = ctx.world();
                solve_imep(ctx, &world, &sys, opts).unwrap()
            });
            let snap = m.traffic().snapshot();
            let (msgs, elems) = predict_traffic(n, ranks, opts);
            assert_eq!(snap.msgs, msgs, "message count for N={ranks} {opts:?}");
            assert_eq!(snap.volume_elems(), elems, "volume for N={ranks} {opts:?}");
        }
    }
}

#[test]
fn optimized_imep_same_solution_less_traffic_and_time() {
    let n = 30;
    let sys = generate::diag_dominant(n, 13);
    let run = |opts: ImepOptions| {
        let m = machine(6, 14);
        let out = m.run(|ctx| {
            let world = ctx.world();
            solve_imep(ctx, &world, &sys, opts).unwrap()
        });
        (
            out.results[0].clone(),
            m.traffic().snapshot().msgs,
            out.makespan,
        )
    };
    let (x_paper, msgs_paper, t_paper) = run(ImepOptions::paper());
    let (x_opt, msgs_opt, t_opt) = run(ImepOptions::optimized());
    // h derived locally is arithmetically identical (same divisions).
    for (a, b) in x_paper.iter().zip(&x_opt) {
        assert!((a - b).abs() < 1e-13, "{a} vs {b}");
    }
    assert!(sys.residual(&x_opt) < 1e-12);
    assert!(msgs_opt < msgs_paper, "{msgs_opt} vs {msgs_paper}");
    assert!(t_opt < t_paper, "{t_opt} vs {t_paper}");
}

#[test]
fn imep_traffic_same_order_as_paper_formulas() {
    // The paper's closed forms count a flat master-to-slaves broadcast as
    // N−1 messages and per-element last-row exchanges; our tree collectives
    // produce the same N−1 edges but batch the row returns, so the counts
    // agree to a modest constant factor and share the V ≈ Θ(N·n²) shape.
    let n = 48;
    for ranks in [4, 8] {
        let (msgs, elems) = predict_traffic(n, ranks, ImepOptions::default());
        let m_paper = greenla_ime::formulas::messages_imep_paper(n, ranks);
        let v_paper = greenla_ime::formulas::volume_imep_paper(n, ranks);
        let m_ratio = msgs as f64 / m_paper as f64;
        let v_ratio = elems as f64 / v_paper as f64;
        assert!((0.05..=20.0).contains(&m_ratio), "message ratio {m_ratio}");
        assert!((0.05..=20.0).contains(&v_ratio), "volume ratio {v_ratio}");
    }
}

#[test]
fn ablation_skipping_last_row_returns_reduces_traffic() {
    let n = 20;
    let sys = generate::diag_dominant(n, 7);
    let run = |collect: bool| {
        let m = machine(4, 5);
        let opts = ImepOptions {
            collect_last_rows: collect,
            ..ImepOptions::paper()
        };
        let out = m.run(|ctx| {
            let world = ctx.world();
            solve_imep(ctx, &world, &sys, opts).unwrap()
        });
        (
            out.results[0].clone(),
            m.traffic().snapshot().msgs,
            out.makespan,
        )
    };
    let (x_with, msgs_with, t_with) = run(true);
    let (x_without, msgs_without, t_without) = run(false);
    assert_eq!(
        x_with, x_without,
        "bookkeeping traffic must not affect the maths"
    );
    assert!(msgs_without < msgs_with);
    assert!(t_without <= t_with);
}

#[test]
fn multi_rhs_reuses_one_reduction() {
    let n = 24;
    let sys = generate::diag_dominant(n, 21);
    // Three right-hand sides, including the system's own.
    let bs: Vec<Vec<f64>> = vec![
        sys.b.clone(),
        (0..n).map(|i| (i as f64).cos()).collect(),
        vec![1.0; n],
    ];
    let m = machine(4, 15);
    let out = m.run(|ctx| {
        let world = ctx.world();
        greenla_ime::solve_imep_multi(ctx, &world, &sys, &bs, ImepOptions::optimized()).unwrap()
    });
    let xs = &out.results[0];
    assert_eq!(xs.len(), 3);
    for (b, x) in bs.iter().zip(xs) {
        let probe = generate::LinearSystem {
            a: sys.a.clone(),
            b: b.clone(),
            x_ref: None,
        };
        assert!(probe.residual(x) < 1e-11, "residual {}", probe.residual(x));
    }
    // The extra solves are cheap: traffic grows by O(n) per RHS, not O(n²).
    let single = {
        let m2 = machine(4, 15);
        m2.run(|ctx| {
            let world = ctx.world();
            solve_imep(ctx, &world, &sys, ImepOptions::optimized()).unwrap()
        });
        m2.traffic().snapshot().volume_elems()
    };
    let triple = m.traffic().snapshot().volume_elems();
    let per_extra_rhs = (triple - single) as f64 / 2.0;
    assert!(
        per_extra_rhs < (4 * n * 3) as f64,
        "extra RHS cost {per_extra_rhs} elems should be O(n)"
    );
}

#[test]
fn zero_diagonal_fails_on_all_ranks() {
    let mut sys = generate::diag_dominant(8, 8);
    sys.a[(3, 3)] = 0.0;
    let m = machine(4, 6);
    let out = m.run(|ctx| {
        let world = ctx.world();
        solve_imep(ctx, &world, &sys, ImepOptions::default())
    });
    for r in out.results {
        assert_eq!(r, Err(ImeError::ZeroDiagonal { row: 3 }));
    }
}

#[test]
fn zero_inhibitor_fails_consistently() {
    use greenla_linalg::Matrix;
    let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
    let sys = generate::LinearSystem {
        a,
        b: vec![1.0, 2.0],
        x_ref: None,
    };
    let m = machine(2, 7);
    let out = m.run(|ctx| {
        let world = ctx.world();
        solve_imep(ctx, &world, &sys, ImepOptions::default())
    });
    for r in out.results {
        assert!(matches!(r, Err(ImeError::ZeroInhibitor { .. })));
    }
}

#[test]
fn ft_without_failure_matches_plain_imep() {
    let sys = generate::diag_dominant(21, 9);
    let m = machine(3, 8);
    let out = m.run(|ctx| {
        let world = ctx.world();
        let plain = solve_imep(ctx, &world, &sys, ImepOptions::default()).unwrap();
        let ft = solve_imep_ft(ctx, &world, &sys, None).unwrap();
        (plain, ft)
    });
    for (plain, ft) in out.results {
        assert_eq!(plain, ft);
    }
}

#[test]
fn ft_recovers_lost_columns() {
    let n = 18;
    let sys = generate::diag_dominant(n, 10);
    let (x_ref, _) = solve_seq(&sys).unwrap();
    // Lose a left column, a right column, early and late, on various owners.
    for (level, column) in [(n - 1, 3), (n / 2, n + 5), (1, n + 1), (n / 2, 0)] {
        let m = machine(4, 9);
        let out = m.run(|ctx| {
            let world = ctx.world();
            solve_imep_ft(ctx, &world, &sys, Some(FailureSpec { level, column })).unwrap()
        });
        for x in &out.results {
            for (a, b) in x.iter().zip(&x_ref) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "failure at level {level} col {column}: {a} vs {b}"
                );
            }
            assert!(sys.residual(x) < 1e-10);
        }
    }
}

#[test]
fn ft_recovery_when_master_is_victim() {
    let n = 12;
    let sys = generate::circuit_network(n, 11);
    let m = machine(3, 10);
    // Column 0 and column n are owned by rank 0 (the master).
    let out = m.run(|ctx| {
        let world = ctx.world();
        solve_imep_ft(
            ctx,
            &world,
            &sys,
            Some(FailureSpec {
                level: n / 2,
                column: 0,
            }),
        )
        .unwrap()
    });
    assert!(sys.residual(&out.results[0]) < 1e-10);
}

#[test]
fn imep_charges_more_flops_than_scalapack_model() {
    // The energy story of the paper rests on IMe executing ~3× the flops of
    // Gaussian elimination; verify the ledger shows it.
    let n = 40;
    let sys = generate::diag_dominant(n, 12);
    let m = machine(4, 11);
    m.run(|ctx| {
        let world = ctx.world();
        solve_imep(ctx, &world, &sys, ImepOptions::default()).unwrap()
    });
    let flops = m.ledger().total_flops();
    let ge_model = greenla_linalg::flops::ge_paper_model(n);
    assert!(
        flops > 2 * ge_model,
        "IMeP charged {flops} flops, GE model is {ge_model}"
    );
}

#[test]
fn ft_property_random_column_loss_at_every_level() {
    // Property sweep for the checksum invariant: for every size up to 40 and
    // every level, losing one randomly chosen column is recoverable and the
    // recovered solution matches the fault-free sequential one. (Size 0 is
    // covered by `ft_degenerate_sizes` below; level loops are empty there.)
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xC0_1055);
    for n in 1..40usize {
        let sys = generate::diag_dominant(n, 100 + n as u64);
        let (x_ref, _) = solve_seq(&sys).unwrap();
        for level in 0..n {
            let column: usize = rng.gen_range(0..2 * n);
            let m = machine(4.min(n.max(1)), 12);
            let out = m.run(|ctx| {
                let world = ctx.world();
                solve_imep_ft(ctx, &world, &sys, Some(FailureSpec { level, column })).unwrap()
            });
            for x in &out.results {
                for (a, b) in x.iter().zip(&x_ref) {
                    assert!(
                        (a - b).abs() < 1e-8,
                        "n={n} level={level} col={column}: {a} vs {b}"
                    );
                }
            }
        }
    }
}

#[test]
fn ft_degenerate_sizes() {
    // n = 0 and n = 1 terminate and return sane results with no failure and
    // (for n = 1) with a loss at the only level.
    let empty = generate::LinearSystem {
        a: greenla_linalg::Matrix::zeros(0, 0),
        b: vec![],
        x_ref: None,
    };
    let m = machine(2, 13);
    let out = m.run(|ctx| {
        let world = ctx.world();
        solve_imep_ft(ctx, &world, &empty, None).unwrap()
    });
    assert!(out.results.iter().all(|x| x.is_empty()));

    let one = generate::diag_dominant(1, 14);
    for failure in [
        None,
        Some(FailureSpec {
            level: 0,
            column: 1,
        }),
    ] {
        let m = machine(2, 13);
        let out = m.run(|ctx| {
            let world = ctx.world();
            solve_imep_ft(ctx, &world, &one, failure).unwrap()
        });
        let r = one.residual(&out.results[0]);
        assert!(r < 1e-12, "n=1 failure={failure:?}: residual {r}");
    }
}

#[test]
fn ft_recovers_runtime_planned_column_loss() {
    // The loss comes from the machine's fault plan, not from the caller:
    // `solve_imep_ft(.., None)` must consult the plan, recover, and account
    // the injection + recovery in the fault report.
    use greenla_mpi::{ColumnLoss, FaultPlan, FaultSink};
    let n = 16;
    let sys = generate::diag_dominant(n, 17);
    let (x_ref, _) = solve_seq(&sys).unwrap();
    // Out-of-range level/column prove the clamp makes plans portable.
    for (level, column) in [(5, 9), (n + 3, 7 * n)] {
        let plan = FaultPlan {
            column_loss: Some(ColumnLoss { level, column }),
            ..FaultPlan::default()
        };
        let sink = FaultSink::with_plan(plan);
        let m = machine(4, 16).with_faults(sink.clone());
        let out = m.run(|ctx| {
            let world = ctx.world();
            solve_imep_ft(ctx, &world, &sys, None).unwrap()
        });
        for x in &out.results {
            for (a, b) in x.iter().zip(&x_ref) {
                assert!((a - b).abs() < 1e-9, "level={level} col={column}");
            }
        }
        let rep = sink.report();
        assert_eq!(rep.injected.column_loss, 1, "one loss injected");
        assert_eq!(rep.observed.column_loss, 1);
        assert_eq!(rep.recovered.column_loss, 1, "and recovered in-band");
    }
}

#[test]
fn ft_caller_failure_takes_precedence_over_plan() {
    // An explicitly staged failure wins; the plan's loss is not injected on
    // top of it, so the report stays empty.
    use greenla_mpi::{ColumnLoss, FaultPlan, FaultSink};
    let n = 10;
    let sys = generate::diag_dominant(n, 18);
    let plan = FaultPlan {
        column_loss: Some(ColumnLoss {
            level: 2,
            column: 3,
        }),
        ..FaultPlan::default()
    };
    let sink = FaultSink::with_plan(plan);
    let m = machine(3, 19).with_faults(sink.clone());
    let out = m.run(|ctx| {
        let world = ctx.world();
        solve_imep_ft(
            ctx,
            &world,
            &sys,
            Some(FailureSpec {
                level: 4,
                column: 6,
            }),
        )
        .unwrap()
    });
    assert!(sys.residual(&out.results[0]) < 1e-10);
    assert_eq!(sink.report().injected.column_loss, 0);
}
