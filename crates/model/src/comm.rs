//! Critical-path costs of the simulated runtime's collectives.
//!
//! Each function mirrors the corresponding algorithm in
//! `greenla_mpi::coll`: binomial trees for ordinary broadcasts/reductions,
//! the chunked binary-tree pipeline for large broadcasts, recursive
//! doubling for allreduce above the small-payload threshold, the ring for
//! allgather, linear gathers, and max-synchronising barriers. The traffic
//! closed forms (`*_traffic`) give the exact message/element counts the
//! runtime's `greenla_mpi::Traffic` tally must reproduce.

use crate::params::MachineParams;

/// Mirror of `greenla_mpi::coll::COLL_SMALL_BYTES`: sum-allreduces at or
/// below this payload size keep the latency-optimal reduce+bcast tree
/// composition; larger ones use recursive doubling.
pub const COLL_SMALL_BYTES: f64 = 512.0;

fn log2c(p: usize) -> f64 {
    if p <= 1 {
        0.0
    } else {
        (p as f64).log2().ceil()
    }
}

fn prev_pow2(p: usize) -> usize {
    let mut q = 1;
    while q * 2 <= p {
        q *= 2;
    }
    q
}

/// Binomial-tree broadcast of `bytes` over `p` ranks: depth hops, each a
/// full-payload message.
pub fn bcast_binomial(p: usize, bytes: f64, m: &MachineParams) -> f64 {
    log2c(p) * m.p2p(bytes)
}

/// Chunked binary-tree pipelined broadcast (see
/// `RankCtx::bcast_pipelined_f64`): a depth term per chunk-sized hop plus a
/// streaming term, and the one-word header.
pub fn bcast_pipelined(p: usize, bytes: f64, chunk_bytes: f64, m: &MachineParams) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let depth = ((p + 1) as f64).log2().ceil();
    let chunks = (bytes / chunk_bytes).ceil().max(1.0);
    let cb = bytes.min(chunk_bytes);
    // Per hop: forward the header (one send overhead) plus the first chunk
    // (send + transport + receive); later chunks stream behind at the
    // fan-out-2 sender rate, with the final chunk's transport at the end.
    let per_hop = 3.0 * m.o + m.alpha + cb * m.beta;
    depth * per_hop + (chunks - 1.0) * 2.0 * m.o + cb * m.beta
}

/// Binomial reduction of `bytes` (same shape as the broadcast).
pub fn reduce_binomial(p: usize, bytes: f64, m: &MachineParams) -> f64 {
    log2c(p) * m.p2p(bytes)
}

/// Recursive-doubling allreduce (see `RankCtx::allreduce_rd`): a
/// fold/unfold round-trip when `p` is not a power of two, then
/// `log₂ p₂` full-payload exchange rounds. Bandwidth term is
/// `log₂ p₂ · β·bytes` versus the tree composition's `2·⌈log₂ p⌉`.
pub fn allreduce_rd(p: usize, bytes: f64, m: &MachineParams) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let p2 = prev_pow2(p);
    let fold = if p2 != p { 2.0 * m.p2p(bytes) } else { 0.0 };
    fold + (p2 as f64).log2() * m.p2p(bytes)
}

/// Allreduce as the runtime selects it: reduce + broadcast trees at or
/// below [`COLL_SMALL_BYTES`], recursive doubling above. (The scalar
/// max/maxloc variants carry 8–16 bytes and therefore always resolve to
/// the trees.)
pub fn allreduce(p: usize, bytes: f64, m: &MachineParams) -> f64 {
    if bytes <= COLL_SMALL_BYTES {
        reduce_binomial(p, bytes, m) + bcast_binomial(p, bytes, m)
    } else {
        allreduce_rd(p, bytes, m)
    }
}

/// Ring allgather of `total_bytes` spread evenly over `p` ranks: `p − 1`
/// steps, each forwarding one `total/p`-sized chunk to the right
/// neighbour. Bandwidth-optimal: `(p−1)/p · β·total` on the wire.
pub fn allgather_ring(p: usize, total_bytes: f64, m: &MachineParams) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    (p as f64 - 1.0) * m.p2p(total_bytes / p as f64)
}

/// Exact traffic of the recursive-doubling allreduce over `p` ranks with
/// `elems` elements per contribution: `(messages, elements)`. Fold and
/// unfold contribute one full-payload message each per excess rank
/// (`r = p − p₂`); the butterfly sends one full payload per participant
/// per round.
pub fn allreduce_rd_traffic(p: usize, elems: u64) -> (u64, u64) {
    if p <= 1 {
        return (0, 0);
    }
    let p2 = prev_pow2(p) as u64;
    let r = p as u64 - p2;
    let msgs = 2 * r + p2 * p2.ilog2() as u64;
    (msgs, msgs * elems)
}

/// Exact traffic of the ring allgather over `p` ranks with `total_elems`
/// elements overall: every rank sends one chunk per step for `p − 1`
/// steps, and each chunk travels the ring `p − 1` times.
pub fn allgather_ring_traffic(p: usize, total_elems: u64) -> (u64, u64) {
    if p <= 1 {
        return (0, 0);
    }
    let pu = p as u64;
    (pu * (pu - 1), (pu - 1) * total_elems)
}

/// Exact traffic of the small-payload tree allreduce (binomial reduce to
/// rank 0 + binomial rebroadcast) over `p` ranks with `elems` elements:
/// every non-root rank moves one full payload in each half, so
/// `2·(p − 1)` messages of `elems` elements. This is the path every
/// ≤ [`COLL_SMALL_BYTES`] sum-allreduce takes — including CG's 8- and
/// 16-byte per-iteration reductions.
pub fn allreduce_tree_traffic(p: usize, elems: u64) -> (u64, u64) {
    if p <= 1 {
        return (0, 0);
    }
    let msgs = 2 * (p as u64 - 1);
    (msgs, msgs * elems)
}

/// Exact traffic of one steady-state CG iteration over `p` ranks
/// (`greenla_cg::pcg`): one halo exchange of the direction vector
/// (`halo_msgs` messages, `halo_elems` elements — both from
/// `greenla_cg::partition::HaloStats`), the 1-element curvature
/// allreduce, and the combined 2-element `[r·z, r·r]` allreduce, the
/// latter two always on the tree path.
pub fn cg_iteration_traffic(p: usize, halo_msgs: u64, halo_elems: u64) -> (u64, u64) {
    let (m1, e1) = allreduce_tree_traffic(p, 1);
    let (m2, e2) = allreduce_tree_traffic(p, 2);
    (halo_msgs + m1 + m2, halo_elems + e1 + e2)
}

/// Exact whole-solve traffic of a converged `greenla_cg::pcg` run: the
/// 2-element seed allreduce, `iters` full iterations, one extra halo
/// exchange per true-residual refresh, and the final ring allgather of
/// the `n` solution elements.
pub fn cg_solve_traffic(
    p: usize,
    n: usize,
    iters: u64,
    refreshes: u64,
    halo_msgs: u64,
    halo_elems: u64,
) -> (u64, u64) {
    let (sm, se) = allreduce_tree_traffic(p, 2);
    let (im, ie) = cg_iteration_traffic(p, halo_msgs, halo_elems);
    let (gm, ge) = allgather_ring_traffic(p, n as u64);
    (
        sm + iters * im + refreshes * halo_msgs + gm,
        se + iters * ie + refreshes * halo_elems + ge,
    )
}

/// Linear gather to a root: the root serialises one receive overhead per
/// child and the last payload's transport.
pub fn gather_linear(p: usize, bytes_per_rank: f64, m: &MachineParams) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    (p as f64 - 1.0) * (m.o + bytes_per_rank * m.beta) + m.alpha + m.o
}

/// Registry barrier: `α·⌈log₂ p⌉ + o` past the latest arrival.
pub fn barrier(p: usize, m: &MachineParams) -> f64 {
    m.alpha * log2c(p) + m.o
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenla_cluster::spec::ClusterSpec;

    fn m() -> MachineParams {
        MachineParams::from_spec(&ClusterSpec::marconi_a3(64))
    }

    #[test]
    fn pipelined_beats_binomial_on_large_payloads() {
        let m = m();
        let big = 8.0 * 34560.0;
        assert!(bcast_pipelined(1296, big, 65536.0, &m) < bcast_binomial(1296, big, &m));
    }

    #[test]
    fn binomial_fine_for_small_payloads() {
        let m = m();
        // One chunk: the pipeline only adds the header hop.
        let small = 512.0;
        let ratio = bcast_pipelined(64, small, 65536.0, &m) / bcast_binomial(64, small, &m);
        assert!(ratio < 2.5, "ratio {ratio}");
    }

    #[test]
    fn gather_scales_linearly() {
        let m = m();
        let g100 = gather_linear(100, 64.0, &m);
        let g200 = gather_linear(200, 64.0, &m);
        assert!(g200 / g100 > 1.8);
    }

    #[test]
    fn degenerate_single_rank_costs_nothing() {
        let m = m();
        assert_eq!(bcast_binomial(1, 1e6, &m), 0.0);
        assert_eq!(bcast_pipelined(1, 1e6, 65536.0, &m), 0.0);
        assert_eq!(gather_linear(1, 1e6, &m), 0.0);
        assert_eq!(allreduce_rd(1, 1e6, &m), 0.0);
        assert_eq!(allgather_ring(1, 1e6, &m), 0.0);
        assert_eq!(barrier(1, &m), m.o);
    }

    #[test]
    fn recursive_doubling_halves_tree_bandwidth() {
        let m = m();
        let big = 8.0 * 1024.0 * 1024.0;
        let tree = reduce_binomial(64, big, &m) + bcast_binomial(64, big, &m);
        let rd = allreduce_rd(64, big, &m);
        // Power of two: log₂ 64 rounds vs 2·log₂ 64 hops — exactly half.
        assert!((rd / tree - 0.5).abs() < 1e-9, "ratio {}", rd / tree);
        // The size switch hands large payloads to recursive doubling and
        // keeps small ones on the trees.
        assert_eq!(allreduce(64, big, &m), rd);
        assert_eq!(
            allreduce(64, 512.0, &m),
            reduce_binomial(64, 512.0, &m) + bcast_binomial(64, 512.0, &m)
        );
    }

    #[test]
    fn ring_beats_tree_allgather_on_large_payloads() {
        let m = m();
        // Tree composition: gather to root, then rebroadcast the full
        // concatenation — the bcast alone moves log₂p · total bytes.
        let total = 8.0 * 1024.0 * 1024.0;
        let p = 64;
        let tree = gather_linear(p, total / p as f64, &m) + bcast_binomial(p, total, &m);
        let ring = allgather_ring(p, total, &m);
        assert!(tree / ring > 1.3, "ratio {}", tree / ring);
    }

    #[test]
    fn traffic_closed_forms() {
        // Power of two: butterfly only.
        assert_eq!(allreduce_rd_traffic(8, 10), (8 * 3, 8 * 3 * 10));
        // p = 6: p₂ = 4, r = 2 → 2 fold + 2 unfold + 4·2 butterfly.
        assert_eq!(allreduce_rd_traffic(6, 5), (12, 60));
        assert_eq!(allreduce_rd_traffic(1, 7), (0, 0));
        assert_eq!(allgather_ring_traffic(8, 40), (56, 280));
        assert_eq!(allgather_ring_traffic(1, 40), (0, 0));
    }

    #[test]
    fn cg_traffic_closed_forms() {
        // Tree allreduce: 2(p−1) full-payload messages.
        assert_eq!(allreduce_tree_traffic(16, 2), (30, 60));
        assert_eq!(allreduce_tree_traffic(1, 2), (0, 0));
        // One iteration at p = 4 with a 6-message / 24-element halo:
        // halo + 2·3 msgs of 1 elem + 2·3 msgs of 2 elems.
        assert_eq!(cg_iteration_traffic(4, 6, 24), (6 + 6 + 6, 24 + 6 + 12));
        // Single rank: no communication at all.
        assert_eq!(cg_iteration_traffic(1, 0, 0), (0, 0));
        assert_eq!(cg_solve_traffic(1, 100, 17, 3, 0, 0), (0, 0));
        // Whole solve = seed + iters·iteration + refresh halos + allgather.
        let (im, ie) = cg_iteration_traffic(4, 6, 24);
        let (gm, ge) = allgather_ring_traffic(4, 64);
        assert_eq!(
            cg_solve_traffic(4, 64, 10, 2, 6, 24),
            (6 + 10 * im + 2 * 6 + gm, 12 + 10 * ie + 2 * 24 + ge)
        );
    }
}
