//! Critical-path costs of the simulated runtime's collectives.
//!
//! Each function mirrors the corresponding algorithm in
//! `greenla_mpi::coll`: binomial trees for ordinary broadcasts/reductions,
//! the chunked binary-tree pipeline for large broadcasts, linear gathers,
//! and max-synchronising barriers.

use crate::params::MachineParams;

fn log2c(p: usize) -> f64 {
    if p <= 1 {
        0.0
    } else {
        (p as f64).log2().ceil()
    }
}

/// Binomial-tree broadcast of `bytes` over `p` ranks: depth hops, each a
/// full-payload message.
pub fn bcast_binomial(p: usize, bytes: f64, m: &MachineParams) -> f64 {
    log2c(p) * m.p2p(bytes)
}

/// Chunked binary-tree pipelined broadcast (see
/// `RankCtx::bcast_pipelined_f64`): a depth term per chunk-sized hop plus a
/// streaming term, and the one-word header.
pub fn bcast_pipelined(p: usize, bytes: f64, chunk_bytes: f64, m: &MachineParams) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let depth = ((p + 1) as f64).log2().ceil();
    let chunks = (bytes / chunk_bytes).ceil().max(1.0);
    let cb = bytes.min(chunk_bytes);
    // Per hop: forward the header (one send overhead) plus the first chunk
    // (send + transport + receive); later chunks stream behind at the
    // fan-out-2 sender rate, with the final chunk's transport at the end.
    let per_hop = 3.0 * m.o + m.alpha + cb * m.beta;
    depth * per_hop + (chunks - 1.0) * 2.0 * m.o + cb * m.beta
}

/// Binomial reduction of `bytes` (same shape as the broadcast).
pub fn reduce_binomial(p: usize, bytes: f64, m: &MachineParams) -> f64 {
    log2c(p) * m.p2p(bytes)
}

/// Allreduce = reduce + broadcast.
pub fn allreduce(p: usize, bytes: f64, m: &MachineParams) -> f64 {
    reduce_binomial(p, bytes, m) + bcast_binomial(p, bytes, m)
}

/// Linear gather to a root: the root serialises one receive overhead per
/// child and the last payload's transport.
pub fn gather_linear(p: usize, bytes_per_rank: f64, m: &MachineParams) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    (p as f64 - 1.0) * (m.o + bytes_per_rank * m.beta) + m.alpha + m.o
}

/// Registry barrier: `α·⌈log₂ p⌉ + o` past the latest arrival.
pub fn barrier(p: usize, m: &MachineParams) -> f64 {
    m.alpha * log2c(p) + m.o
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenla_cluster::spec::ClusterSpec;

    fn m() -> MachineParams {
        MachineParams::from_spec(&ClusterSpec::marconi_a3(64))
    }

    #[test]
    fn pipelined_beats_binomial_on_large_payloads() {
        let m = m();
        let big = 8.0 * 34560.0;
        assert!(bcast_pipelined(1296, big, 65536.0, &m) < bcast_binomial(1296, big, &m));
    }

    #[test]
    fn binomial_fine_for_small_payloads() {
        let m = m();
        // One chunk: the pipeline only adds the header hop.
        let small = 512.0;
        let ratio = bcast_pipelined(64, small, 65536.0, &m) / bcast_binomial(64, small, &m);
        assert!(ratio < 2.5, "ratio {ratio}");
    }

    #[test]
    fn gather_scales_linearly() {
        let m = m();
        let g100 = gather_linear(100, 64.0, &m);
        let g200 = gather_linear(200, 64.0, &m);
        assert!(g200 / g100 > 1.8);
    }

    #[test]
    fn degenerate_single_rank_costs_nothing() {
        let m = m();
        assert_eq!(bcast_binomial(1, 1e6, &m), 0.0);
        assert_eq!(bcast_pipelined(1, 1e6, 65536.0, &m), 0.0);
        assert_eq!(gather_linear(1, 1e6, &m), 0.0);
        assert_eq!(barrier(1, &m), m.o);
    }
}
