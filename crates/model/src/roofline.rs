//! Roofline model: per-kernel attainable GFLOP/s and energy from machine
//! ceilings and closed-form kernel profiles.
//!
//! A [`Roofline`] is a set of machine ceilings — in-core flop rates for the
//! code classes the linear-algebra crate actually ships, a per-core DRAM
//! bandwidth, and a core count. A [`KernelProfile`] is the matching
//! closed-form description of one kernel invocation: how many flops it
//! executes in each code class, how many DRAM bytes it moves
//! (`greenla_linalg::flops` provides the closed forms), and how many
//! workers it runs on. [`Roofline::predict`] combines the two the classic
//! way:
//!
//! ```text
//! time = max( Σ_class flops_class / rate_class ,  bytes / bandwidth ) / workers
//! ```
//!
//! Two calibrations exist. [`Roofline::from_spec`] reads the ceilings off a
//! [`ClusterSpec`] — this models the *simulated* machine, whose virtual
//! clock charges every flop at one sustained rate, so all the class rates
//! collapse to `sustained_flops_per_core`; the harness validates its
//! predictions against the simulator's RAPL readings. The harness also
//! builds a second, *measured* roofline from short host probes
//! (`greenla_harness::roofline`) and validates that one against the bench
//! suite's wall-clock GFLOP/s.
//!
//! Energy prediction reuses [`crate::energy::energy`] — the same power
//! coefficients the simulated RAPL integrates — on the roofline-predicted
//! compute time.

use crate::energy::{energy, EnergyPrediction};
use crate::solvers::TimeBreakdown;
use greenla_cluster::placement::LoadLayout;
use greenla_cluster::spec::{ClusterSpec, NodeSpec};
use greenla_cluster::PowerModel;

/// Machine ceilings for [`predict`](Roofline::predict): five in-core flop
/// rates (one per code class in `greenla-linalg`), a per-core memory
/// bandwidth, and the core budget that caps worker scaling.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Roofline {
    /// In-core flop/s of one core running the dispatched packed
    /// microkernel on square-ish panels (the `dgemm_packed_*` regime).
    pub simd_flops: f64,
    /// In-core flop/s of the dispatched microkernel on thin
    /// `k = TRSM_BLOCK` panels — packing overhead per flop is higher, so
    /// the trailing updates of the triangular solves run measurably below
    /// [`Self::simd_flops`].
    pub thin_simd_flops: f64,
    /// In-core flop/s of the packed loop nest pinned to the scalar
    /// microkernel (`GREENLA_KERNEL=scalar`).
    pub packed_scalar_flops: f64,
    /// In-core flop/s of the unpacked reference loop nest
    /// (`dgemm_reference`).
    pub reference_flops: f64,
    /// In-core flop/s of the triangular solves' substitution loops —
    /// short, loop-carried dependent runs that no code path vectorizes
    /// well, far below [`Self::reference_flops`].
    pub subst_flops: f64,
    /// DRAM bytes/s available to one core.
    pub mem_bw: f64,
    /// Cores available; [`KernelProfile::workers`] is clamped to this.
    pub cores: usize,
}

/// Closed-form description of one kernel invocation, split by code class.
/// Classes the kernel does not use stay at zero flops.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelProfile {
    /// Flops through the dispatched microkernel on square-ish panels.
    pub simd_flops: f64,
    /// Flops through the dispatched microkernel on thin (`TRSM_BLOCK`-deep)
    /// panels.
    pub thin_simd_flops: f64,
    /// Flops through the scalar-microkernel packed loop nest.
    pub packed_scalar_flops: f64,
    /// Flops through the reference loop nest.
    pub reference_flops: f64,
    /// Flops through triangular-substitution loops.
    pub subst_flops: f64,
    /// DRAM-level bytes moved.
    pub bytes: f64,
    /// Worker threads the kernel runs on (0 is treated as 1).
    pub workers: usize,
}

impl KernelProfile {
    /// Profile of a kernel whose flops all go through the dispatched
    /// microkernel on square-ish panels.
    pub fn simd(flops: f64, bytes: f64, workers: usize) -> Self {
        Self {
            simd_flops: flops,
            bytes,
            workers,
            ..Self::default()
        }
    }

    /// Profile of a scalar-microkernel packed run.
    pub fn packed_scalar(flops: f64, bytes: f64) -> Self {
        Self {
            packed_scalar_flops: flops,
            bytes,
            workers: 1,
            ..Self::default()
        }
    }

    /// Profile of a reference-loop run.
    pub fn reference(flops: f64, bytes: f64) -> Self {
        Self {
            reference_flops: flops,
            bytes,
            workers: 1,
            ..Self::default()
        }
    }

    /// Profile of a sparse-workload sweep (CSR SpMV plus BLAS1 traffic —
    /// the per-rank flop/byte totals come from `greenla_cg::formulas`).
    /// The kernels are plain scalar loops, so the flops ride the
    /// reference-class ceiling; at SpMV's ~1/6 flop-per-byte arithmetic
    /// intensity the prediction pins to the memory ceiling on every
    /// machine this workspace models — the inversion the sparse campaign
    /// demonstrates.
    pub fn sparse(flops: u64, bytes: u64, workers: usize) -> Self {
        Self {
            reference_flops: flops as f64,
            bytes: bytes as f64,
            workers,
            ..Self::default()
        }
    }

    fn total_flops(&self) -> f64 {
        self.simd_flops
            + self.thin_simd_flops
            + self.packed_scalar_flops
            + self.reference_flops
            + self.subst_flops
    }
}

/// What [`Roofline::predict`] derives for one kernel invocation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RooflinePrediction {
    /// Predicted wall (or virtual) time of the invocation.
    pub time_s: f64,
    /// Attainable rate: total flops over [`Self::time_s`], in GFLOP/s.
    pub gflops: f64,
    /// Arithmetic intensity, flops per DRAM byte (∞ when `bytes = 0`).
    pub ai: f64,
    /// Whether the in-core term (rather than the bandwidth term) set the
    /// predicted time.
    pub compute_bound: bool,
}

impl Roofline {
    /// Ceilings of the *simulated* machine described by `spec`. The
    /// simulator's virtual clock charges every flop at
    /// `sustained_flops_per_core` regardless of code class, so every
    /// class rate collapses to that figure; bandwidth is a core's share of
    /// its *socket's* DRAM bandwidth (`dram_bw_bytes_per_s` is per socket,
    /// see [`greenla_cluster::spec::NodeSpec`]), exactly what the
    /// simulator's `compute` charge uses. Dividing by the whole node's
    /// cores instead — an easy slip — halves the ceiling and only shows
    /// up on memory-bound profiles, where it overpredicts wall time ~2×.
    pub fn from_spec(spec: &ClusterSpec) -> Self {
        let rate = spec.node.cpu.sustained_flops_per_core;
        Self {
            simd_flops: rate,
            thin_simd_flops: rate,
            packed_scalar_flops: rate,
            reference_flops: rate,
            subst_flops: rate,
            mem_bw: spec.node.dram_bw_bytes_per_s / spec.node.cpu.cores_per_socket as f64,
            cores: spec.node.cores(),
        }
    }

    /// Panics unless every ceiling is positive and finite — a zero rate
    /// would silently predict infinite time.
    pub fn validate(&self) {
        for (name, v) in [
            ("simd_flops", self.simd_flops),
            ("thin_simd_flops", self.thin_simd_flops),
            ("packed_scalar_flops", self.packed_scalar_flops),
            ("reference_flops", self.reference_flops),
            ("subst_flops", self.subst_flops),
            ("mem_bw", self.mem_bw),
        ] {
            assert!(v.is_finite() && v > 0.0, "roofline ceiling {name} = {v}");
        }
        assert!(self.cores >= 1, "roofline needs at least one core");
    }

    /// Predicted time/rate for one kernel invocation: the slower of the
    /// in-core term (each flop class at its own ceiling) and the memory
    /// term, with both scaled by the worker count (clamped to
    /// [`Self::cores`] — oversubscription does not add throughput).
    pub fn predict(&self, p: &KernelProfile) -> RooflinePrediction {
        self.validate();
        let w = p.workers.clamp(1, self.cores) as f64;
        let in_core = p.simd_flops / self.simd_flops
            + p.thin_simd_flops / self.thin_simd_flops
            + p.packed_scalar_flops / self.packed_scalar_flops
            + p.reference_flops / self.reference_flops
            + p.subst_flops / self.subst_flops;
        let mem = p.bytes / self.mem_bw;
        let time_s = in_core.max(mem) / w;
        let flops = p.total_flops();
        RooflinePrediction {
            time_s,
            gflops: if time_s > 0.0 {
                flops / time_s / 1e9
            } else {
                0.0
            },
            ai: if p.bytes > 0.0 {
                flops / p.bytes
            } else {
                f64::INFINITY
            },
            compute_bound: in_core >= mem,
        }
    }

    /// Predicted virtual time of one overlapped SpMV phase: the halo
    /// exchange is posted first, the interior rows are computed while the
    /// payloads are in flight, and the boundary rows run after the drain —
    /// so the phase costs `max(halo_s, interior) + boundary`, exactly the
    /// recurrence the overlapped solver's clock follows.
    pub fn overlapped_phase_s(
        &self,
        interior: &KernelProfile,
        boundary: &KernelProfile,
        halo_s: f64,
    ) -> f64 {
        self.predict(interior).time_s.max(halo_s) + self.predict(boundary).time_s
    }

    /// Communication seconds one overlapped exchange hides under the
    /// interior compute: `min(halo_s, interior)`. A whole-solve makespan
    /// prediction subtracts this credit once per exchange from the
    /// blocking-model wall time — the harness's sparse `model_check` does
    /// exactly that, and feeds the reduced communication share into
    /// [`Self::predict_energy`] so the predicted joules drop with the
    /// hidden seconds.
    pub fn overlap_credit(&self, interior: &KernelProfile, halo_s: f64) -> f64 {
        halo_s.min(self.predict(interior).time_s)
    }

    /// Predicted energy of a job whose per-rank work is `per_rank` and
    /// whose non-compute (communication) share of the makespan is
    /// `comm_s`: the roofline supplies the compute time, and
    /// [`crate::energy::energy`] — the same coefficients the simulated
    /// RAPL integrates — turns the breakdown into joules.
    #[allow(clippy::too_many_arguments)]
    pub fn predict_energy(
        &self,
        node: &NodeSpec,
        power: &PowerModel,
        layout: LoadLayout,
        ranks: usize,
        per_rank: &KernelProfile,
        comm_s: f64,
        bytes_total: f64,
    ) -> EnergyPrediction {
        let compute_s = self.predict(per_rank).time_s;
        energy(
            node,
            power,
            layout,
            ranks,
            &TimeBreakdown { compute_s, comm_s },
            bytes_total,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rf() -> Roofline {
        Roofline {
            simd_flops: 40e9,
            thin_simd_flops: 25e9,
            packed_scalar_flops: 12e9,
            reference_flops: 6e9,
            subst_flops: 3e9,
            mem_bw: 20e9,
            cores: 4,
        }
    }

    #[test]
    fn from_spec_collapses_to_sustained_rate() {
        let spec = ClusterSpec::test_cluster(2, 8);
        let r = Roofline::from_spec(&spec);
        r.validate();
        let sustained = spec.node.cpu.sustained_flops_per_core;
        assert_eq!(r.simd_flops, sustained);
        assert_eq!(r.reference_flops, sustained);
        assert_eq!(r.cores, spec.node.cores());
        // Per-core bandwidth is the *socket* share — the same figure the
        // simulator's `compute` charge divides by, not the node total.
        assert_eq!(
            r.mem_bw,
            spec.node.dram_bw_bytes_per_s / spec.node.cpu.cores_per_socket as f64
        );
    }

    #[test]
    fn compute_bound_kernel_hits_its_class_ceiling() {
        // High AI: the in-core term dominates and the attainable rate is
        // exactly the class ceiling.
        let p = KernelProfile::simd(4e9, 1e6, 1);
        let out = rf().predict(&p);
        assert!(out.compute_bound);
        assert!((out.gflops - 40.0).abs() < 1e-9, "gflops {}", out.gflops);
        assert!((out.time_s - 0.1).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_kernel_hits_the_bandwidth_ceiling() {
        // AI = 0.1 flop/byte on a 2 flop/byte machine balance: bandwidth
        // bound, attainable = AI × bw.
        let p = KernelProfile::simd(1e8, 1e9, 1);
        let out = rf().predict(&p);
        assert!(!out.compute_bound);
        assert!((out.time_s - 0.05).abs() < 1e-12);
        assert!((out.gflops - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_classes_sum_their_in_core_terms() {
        let p = KernelProfile {
            thin_simd_flops: 25e9,
            subst_flops: 3e9,
            bytes: 1.0,
            workers: 1,
            ..KernelProfile::default()
        };
        // One second per class.
        let out = rf().predict(&p);
        assert!((out.time_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn workers_scale_and_clamp_to_cores() {
        let r = rf();
        let p1 = KernelProfile::simd(4e9, 1e6, 1);
        let p4 = KernelProfile { workers: 4, ..p1 };
        let p64 = KernelProfile { workers: 64, ..p1 };
        let t1 = r.predict(&p1).time_s;
        assert!((r.predict(&p4).time_s - t1 / 4.0).abs() < 1e-15);
        // 64 requested workers on 4 cores: same as 4.
        assert_eq!(r.predict(&p64).time_s, r.predict(&p4).time_s);
    }

    #[test]
    fn zero_work_predicts_zero_time_without_nan() {
        let out = rf().predict(&KernelProfile::default());
        assert_eq!(out.time_s, 0.0);
        assert_eq!(out.gflops, 0.0);
        assert!(out.ai.is_infinite());
    }

    #[test]
    #[should_panic(expected = "roofline ceiling")]
    fn zero_ceiling_rejected() {
        let mut r = rf();
        r.mem_bw = 0.0;
        r.predict(&KernelProfile::default());
    }

    #[test]
    fn overlapped_phase_hides_the_smaller_of_halo_and_interior() {
        let r = rf();
        // Memory-bound slices: 1e9 bytes interior (0.05 s), 4e8 boundary
        // (0.02 s) at 20 GB/s.
        let interior = KernelProfile::sparse(1_000_000, 1_000_000_000, 1);
        let boundary = KernelProfile::sparse(400_000, 400_000_000, 1);
        let (ti, tb) = (0.05, 0.02);
        // Halo shorter than the interior: fully hidden.
        let t = r.overlapped_phase_s(&interior, &boundary, 0.01);
        assert!((t - (ti + tb)).abs() < 1e-12, "t {t}");
        assert!((r.overlap_credit(&interior, 0.01) - 0.01).abs() < 1e-15);
        // Halo longer: the exchange sets the pace, credit caps at interior.
        let t = r.overlapped_phase_s(&interior, &boundary, 0.09);
        assert!((t - (0.09 + tb)).abs() < 1e-12, "t {t}");
        assert!((r.overlap_credit(&interior, 0.09) - ti).abs() < 1e-12);
        // Identity: blocking time minus the credit is the overlapped time.
        for halo in [0.0, 0.01, 0.05, 0.09] {
            let blocking = halo + ti + tb;
            let overlapped = r.overlapped_phase_s(&interior, &boundary, halo);
            let credit = r.overlap_credit(&interior, halo);
            assert!(
                (blocking - credit - overlapped).abs() < 1e-12,
                "halo {halo}"
            );
        }
    }

    #[test]
    fn predicted_energy_matches_energy_model_on_predicted_time() {
        let spec = ClusterSpec::test_cluster(1, 8);
        let r = Roofline::from_spec(&spec);
        let power = PowerModel::scaled_for(&spec.node);
        let per_rank = KernelProfile::simd(8e9, 1e8, 1);
        let ranks = spec.node.cores();
        let e = r.predict_energy(
            &spec.node,
            &power,
            LoadLayout::FullLoad,
            ranks,
            &per_rank,
            0.25,
            1e9,
        );
        let t = r.predict(&per_rank).time_s;
        let want = energy(
            &spec.node,
            &power,
            LoadLayout::FullLoad,
            ranks,
            &TimeBreakdown {
                compute_s: t,
                comm_s: 0.25,
            },
            1e9,
        );
        assert_eq!(e, want);
        assert!(e.total_j > 0.0);
        assert!((e.duration_s - (t + 0.25)).abs() < 1e-12);
    }
}
