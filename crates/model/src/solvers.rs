//! Per-solver critical-path time models, mirroring the implementations.

use crate::comm;
use crate::params::MachineParams;
use greenla_ime::par::{ImepOptions, BCAST_CHUNK, LEVEL_FUSE};
use greenla_scalapack::ProcessGrid;

/// Split of the predicted makespan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimeBreakdown {
    /// Per-rank busy-computing seconds (flop- or memory-bound, whichever
    /// binds).
    pub compute_s: f64,
    /// Exposed communication/synchronisation seconds on the critical path.
    pub comm_s: f64,
}

impl TimeBreakdown {
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.comm_s
    }
}

/// Total DRAM bytes a solver moves (drives the DRAM energy model).
pub fn ime_bytes(n: usize) -> f64 {
    let n = n as f64;
    // Table updates (fused over LEVEL_FUSE levels) + INITIME writes.
    16.0 * n * n * n / LEVEL_FUSE as f64 + 16.0 * n * n
}

/// Total DRAM bytes of the blocked distributed LU.
pub fn ge_bytes(n: usize, nb: usize) -> f64 {
    let n = n as f64;
    // Trailing GEMM traffic per panel, divided by the LLC reuse factor the
    // implementation charges (see `greenla_scalapack::pdgetrf`).
    let reuse = greenla_scalapack::pdgetrf::GEMM_CACHE_REUSE as f64;
    16.0 * n * n * n / (3.0 * nb as f64) / reuse + 16.0 * n * n
}

/// IMeP makespan model.
pub fn ime_time(n: usize, nranks: usize, m: &MachineParams, opts: ImepOptions) -> TimeBreakdown {
    let nf = n as f64;
    let flops = greenla_ime::formulas::flops_ime_ours(n) as f64;
    let flop_time = flops / (nranks as f64 * m.rate);
    let mem_time = ime_bytes(n) / (nranks as f64 * m.bw_per_core);
    let compute_s = flop_time.max(mem_time);

    let col_bytes = 8.0 * nf;
    let per_level_bcast = if opts.pipelined_bcast {
        comm::bcast_pipelined(nranks, col_bytes, 8.0 * BCAST_CHUNK as f64, m)
    } else {
        comm::bcast_binomial(nranks, col_bytes, m)
    };
    let per_level_h = if opts.centralized_h {
        comm::bcast_binomial(nranks, 8.0 * (nf + 1.0), m)
    } else {
        0.0
    };
    let per_level_rows = if opts.collect_last_rows {
        comm::gather_linear(nranks, 8.0 * (nf + 1.0) / nranks as f64, m)
    } else {
        0.0
    };
    let init_final = comm::bcast_binomial(nranks, col_bytes, m) * 2.0
        + comm::gather_linear(nranks, 8.0 * nf / nranks as f64, m);
    let comm_s = nf * (per_level_bcast + per_level_h + per_level_rows) + init_final;
    TimeBreakdown { compute_s, comm_s }
}

/// `pdgesv` makespan model (factorisation + solve).
pub fn ge_time(n: usize, nranks: usize, nb: usize, m: &MachineParams) -> TimeBreakdown {
    let nf = n as f64;
    let nbf = nb as f64;
    let (pr, pc) = ProcessGrid::square_shape(nranks);
    let (prf, pcf) = (pr as f64, pc as f64);

    // --- compute ---
    let lu_flops = greenla_linalg::flops::getrf(n) as f64 + greenla_linalg::flops::getrs(n) as f64;
    let flop_time = lu_flops / (nranks as f64 * m.rate);
    let mem_time = ge_bytes(n, nb) / (nranks as f64 * m.bw_per_core);
    // Panel factorisation runs on one process column while the rest wait:
    // its flops sit on the critical path beyond the balanced share.
    let panel_flops = nbf * nf * nf / 2.0;
    let panel_extra = panel_flops / (prf * m.rate);
    let compute_s = flop_time.max(mem_time) + panel_extra;

    // --- per-column communication (panel factorisation) ---
    let maxloc = comm::allreduce(pr, 16.0, m);
    let panel_swap = 2.0 * m.p2p(8.0 * nbf);
    let rowseg = comm::bcast_binomial(pr, 8.0 * nbf / 2.0, m);
    let per_column = maxloc + panel_swap + rowseg;

    // --- per-panel communication ---
    let panels = nf / nbf;
    let lrows = nf / prf;
    let panel_bcast_bytes = 8.0 * lrows * nbf;
    let panel_bcast = if panel_bcast_bytes > 8.0 * 4096.0 {
        comm::bcast_pipelined(pc, panel_bcast_bytes, 8.0 * 1024.0, m)
    } else {
        comm::bcast_binomial(pc, panel_bcast_bytes, m)
    };
    let meta = comm::bcast_binomial(pc, 8.0 * (nbf + 2.0), m);
    // Trailing row interchanges: nb swaps per panel, pairwise-parallel
    // across process columns but serialised at repeated owner rows.
    let laswp = nbf * 2.0 * m.o + m.p2p(8.0 * nf / pcf);
    let u12_bytes = 8.0 * nbf * (nf / 2.0) / pcf;
    let u12_bcast = if u12_bytes > 8.0 * 4096.0 {
        comm::bcast_pipelined(pr, u12_bytes, 8.0 * 1024.0, m)
    } else {
        comm::bcast_binomial(pr, u12_bytes, m)
    };
    let per_panel = meta + panel_bcast + laswp + u12_bcast;

    // --- triangular solves (pdgetrs): two sweeps over the block rows ---
    let per_block = comm::allreduce(pc, 8.0 * nbf, m)
        + comm::bcast_binomial(pc, 8.0 * nbf, m)
        + comm::bcast_binomial(pr, 8.0 * nbf, m);
    let solve_comm = 2.0 * panels * per_block;

    let comm_s = nf * per_column + panels * per_panel + solve_comm;
    TimeBreakdown { compute_s, comm_s }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greenla_cluster::spec::ClusterSpec;

    fn m() -> MachineParams {
        MachineParams::from_spec(&ClusterSpec::marconi_a3(64))
    }

    #[test]
    fn ime_compute_scales_inverse_in_ranks() {
        let m = m();
        let t144 = ime_time(8640, 144, &m, ImepOptions::optimized());
        let t576 = ime_time(8640, 576, &m, ImepOptions::optimized());
        assert!((t144.compute_s / t576.compute_s - 4.0).abs() < 0.1);
    }

    #[test]
    fn ge_flops_advantage_shows_in_compute() {
        let m = m();
        let ime = ime_time(17280, 144, &m, ImepOptions::optimized());
        let ge = ge_time(17280, 144, 64, &m);
        let ratio = ime.compute_s / ge.compute_s;
        assert!(ratio > 2.0 && ratio < 4.5, "compute ratio {ratio}");
    }

    #[test]
    fn paper_protocol_costs_more_comm_than_optimized() {
        let m = m();
        let paper = ime_time(8640, 576, &m, ImepOptions::paper());
        let opt = ime_time(8640, 576, &m, ImepOptions::optimized());
        assert!(paper.comm_s > opt.comm_s * 1.5);
    }

    #[test]
    fn fig5_crossover_shape() {
        // The paper's §5.2: "ScaLAPACK is faster in the more dense
        // computations, whilst IMe is faster … in more distributed
        // computations, like for 576 and 1296 ranks for matrix dimensions
        // 8640 and 17280".
        let m = m();
        let opts = ImepOptions::optimized();
        // Dense computation: the largest matrix on the fewest ranks.
        let ime_dense = ime_time(34560, 144, &m, opts).total_s();
        let ge_dense = ge_time(34560, 144, 64, &m).total_s();
        assert!(
            ge_dense < ime_dense,
            "ScaLAPACK must win dense: {ge_dense} vs {ime_dense}"
        );
        // Distributed computation: the smallest matrix on the most ranks.
        let ime_dist = ime_time(8640, 1296, &m, opts).total_s();
        let ge_dist = ge_time(8640, 1296, 64, &m).total_s();
        assert!(
            ime_dist < ge_dist,
            "IMe must win distributed: {ime_dist} vs {ge_dist}"
        );
    }

    #[test]
    fn strong_scaling_reduces_time() {
        let m = m();
        // At n=17280 and above, quadrupling the ranks still pays off; the
        // smallest matrix saturates (which is where IMe overtakes, §5.2).
        for n in [17280, 34560] {
            let t1 = ge_time(n, 144, 64, &m).total_s();
            let t2 = ge_time(n, 576, 64, &m).total_s();
            assert!(t2 < t1, "n={n}: {t2} !< {t1}");
        }
        let ime1 = ime_time(17280, 144, &m, ImepOptions::optimized()).total_s();
        let ime2 = ime_time(17280, 576, &m, ImepOptions::optimized()).total_s();
        assert!(ime2 < ime1, "IMe: {ime2} !< {ime1}");
    }
}
