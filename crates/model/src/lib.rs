#![forbid(unsafe_code)]
//! # greenla-model
//!
//! Analytic time/energy/traffic models for the two solvers at **paper
//! scale**. The discrete simulator executes real numerics, so it cannot run
//! the paper's largest configurations (n = 34560 on 1296 ranks is ~10¹³
//! flops); this crate evaluates closed-form cost models with the *same*
//! machine parameters (α/β/o network model, per-core sustained rate,
//! per-core memory bandwidth, the power model) so the harness can print the
//! paper-scale rows next to the functional-tier measurements.
//!
//! The models mirror the implementations structurally — per-level costs for
//! IMeP, per-column/per-panel costs for `pdgetrf` — and `calibrate` tests
//! pin them against the discrete simulation on configurations small enough
//! to run both ways.

pub mod comm;
pub mod energy;
pub mod params;
pub mod predict;
pub mod roofline;
pub mod solvers;

pub use params::MachineParams;
pub use predict::{predict, Prediction, Scenario, Solver};
