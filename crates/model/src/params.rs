//! Machine parameters extracted from the cluster spec — one struct so the
//! model and the simulator provably share constants.

use greenla_cluster::spec::ClusterSpec;

/// Flat parameter set for the analytic model.
#[derive(Clone, Copy, Debug)]
pub struct MachineParams {
    /// Sustained flop/s per core.
    pub rate: f64,
    /// DRAM bytes/s available to one core.
    pub bw_per_core: f64,
    /// Per-message CPU overhead (s).
    pub o: f64,
    /// Inter-node latency (s).
    pub alpha: f64,
    /// Inter-node seconds per byte.
    pub beta: f64,
    /// Intra-node latency (s).
    pub alpha_intra: f64,
    /// Intra-node seconds per byte.
    pub beta_intra: f64,
}

impl MachineParams {
    pub fn from_spec(spec: &ClusterSpec) -> Self {
        Self {
            rate: spec.node.cpu.sustained_flops_per_core,
            bw_per_core: spec.node.dram_bw_bytes_per_s / spec.node.cpu.cores_per_socket as f64,
            o: spec.net.per_message_overhead_s,
            alpha: spec.net.latency_s,
            beta: 1.0 / spec.net.bandwidth_bytes_per_s,
            alpha_intra: spec.net.intra_latency_s,
            beta_intra: 1.0 / spec.net.intra_bandwidth_bytes_per_s,
        }
    }

    /// Time a point-to-point message of `bytes` adds to the critical path
    /// (sender overhead + transport + receiver overhead), assuming
    /// inter-node distance — the common case once jobs span nodes.
    pub fn p2p(&self, bytes: f64) -> f64 {
        2.0 * self.o + self.alpha + bytes * self.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_matches_spec() {
        let spec = ClusterSpec::marconi_a3(4);
        let p = MachineParams::from_spec(&spec);
        assert_eq!(p.rate, spec.node.cpu.sustained_flops_per_core);
        assert_eq!(p.alpha, 1.8e-6);
        assert!((p.beta - 8.0e-11).abs() < 1e-15);
        assert!(p.bw_per_core > 5.0e9 && p.bw_per_core < 6.0e9);
    }

    #[test]
    fn p2p_monotone() {
        let p = MachineParams::from_spec(&ClusterSpec::marconi_a3(1));
        assert!(p.p2p(8.0) < p.p2p(1e6));
    }
}
