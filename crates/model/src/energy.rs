//! Energy model on top of a predicted time breakdown: the same power
//! coefficients the simulator's RAPL uses, applied to the predicted busy
//! profile.

use crate::solvers::TimeBreakdown;
use greenla_cluster::placement::LoadLayout;
use greenla_cluster::spec::NodeSpec;
use greenla_cluster::PowerModel;
use serde::{Deserialize, Serialize};

/// Predicted job energy, split the way the monitoring framework reports it.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyPrediction {
    pub duration_s: f64,
    pub pkg_j: f64,
    pub dram_j: f64,
    pub total_j: f64,
    /// Package energy by socket index, summed over nodes.
    pub per_socket_pkg: [f64; 2],
    /// DRAM energy by socket index, summed over nodes.
    pub per_socket_dram: [f64; 2],
    pub mean_power_w: f64,
}

/// Evaluate the power model for a job of `ranks` ranks under `layout`,
/// whose ranks each compute for `time.compute_s` seconds and sit in
/// communication for the rest of the `time.total_s()` makespan, moving
/// `bytes_total` DRAM bytes overall.
pub fn energy(
    node: &NodeSpec,
    power: &PowerModel,
    layout: LoadLayout,
    ranks: usize,
    time: &TimeBreakdown,
    bytes_total: f64,
) -> EnergyPrediction {
    let rpn = layout.ranks_per_node(node);
    assert!(ranks.is_multiple_of(rpn), "ranks must fill whole nodes");
    let nodes = (ranks / rpn) as f64;
    let t = time.total_s();
    let compute_s = time.compute_s.min(t);
    let comm_s = t - compute_s;
    let cps = node.cpu.cores_per_socket as f64;
    let (s0, s1) = layout.per_socket(node);
    let per_socket_ranks = [s0 as f64, s1 as f64];
    let loaded_sockets: f64 = per_socket_ranks.iter().filter(|&&r| r > 0.0).count() as f64;

    let mut per_socket_pkg = [0.0; 2];
    let mut per_socket_dram = [0.0; 2];
    for s in 0..2 {
        let rs = per_socket_ranks[s];
        let pkg_per_node = t * (power.pkg_uncore_w + cps * power.core_idle_w)
            + rs * (compute_s * power.core_compute_w + comm_s * power.core_comm_w);
        let socket_bytes = if rs > 0.0 {
            bytes_total / (nodes * loaded_sockets)
        } else {
            0.0
        };
        let dram_per_node = t * power.dram_static_w + socket_bytes * power.dram_energy_per_byte_j;
        per_socket_pkg[s] = pkg_per_node * nodes;
        per_socket_dram[s] = dram_per_node * nodes;
    }
    let pkg_j = per_socket_pkg[0] + per_socket_pkg[1];
    let dram_j = per_socket_dram[0] + per_socket_dram[1];
    let total_j = pkg_j + dram_j;
    EnergyPrediction {
        duration_s: t,
        pkg_j,
        dram_j,
        total_j,
        per_socket_pkg,
        per_socket_dram,
        mean_power_w: if t > 0.0 { total_j / t } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> NodeSpec {
        NodeSpec::marconi_a3()
    }

    fn tb(compute: f64, comm: f64) -> TimeBreakdown {
        TimeBreakdown {
            compute_s: compute,
            comm_s: comm,
        }
    }

    #[test]
    fn full_load_beats_half_load_on_energy() {
        // Same work, same duration: half-load powers twice the nodes.
        let p = PowerModel::deterministic();
        let t = tb(10.0, 1.0);
        let full = energy(&node(), &p, LoadLayout::FullLoad, 144, &t, 1e12);
        let half = energy(&node(), &p, LoadLayout::HalfOneSocket, 144, &t, 1e12);
        assert!(
            half.total_j > full.total_j * 1.2,
            "half-load {} should clearly exceed full-load {}",
            half.total_j,
            full.total_j
        );
    }

    #[test]
    fn one_socket_layout_concentrates_dram_traffic() {
        let p = PowerModel::deterministic();
        let t = tb(5.0, 0.5);
        let one = energy(&node(), &p, LoadLayout::HalfOneSocket, 48, &t, 1e12);
        assert_eq!(
            one.per_socket_dram[1],
            one.duration_s * p.dram_static_w * 2.0
        );
        assert!(one.per_socket_dram[0] > one.per_socket_dram[1]);
        // Socket 1 is idle but still draws uncore + parked cores.
        let drop = 1.0 - one.per_socket_pkg[1] / one.per_socket_pkg[0];
        assert!((0.35..0.70).contains(&drop), "idle-socket drop {drop}");
    }

    #[test]
    fn two_socket_half_load_balances() {
        let p = PowerModel::deterministic();
        let t = tb(5.0, 0.5);
        let two = energy(&node(), &p, LoadLayout::HalfTwoSockets, 48, &t, 1e12);
        assert!((two.per_socket_pkg[0] - two.per_socket_pkg[1]).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_with_duration() {
        let p = PowerModel::deterministic();
        let e1 = energy(&node(), &p, LoadLayout::FullLoad, 48, &tb(1.0, 0.0), 0.0);
        let e2 = energy(&node(), &p, LoadLayout::FullLoad, 48, &tb(2.0, 0.0), 0.0);
        assert!((e2.total_j / e1.total_j - 2.0).abs() < 1e-9);
    }
}
