//! One-call predictions for paper-scale configurations.

use crate::energy::{energy, EnergyPrediction};
use crate::params::MachineParams;
use crate::solvers::{ge_bytes, ge_time, ime_bytes, ime_time, TimeBreakdown};
use greenla_cluster::placement::LoadLayout;
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_ime::par::ImepOptions;
use serde::{Deserialize, Serialize};

/// Which solver to predict.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Solver {
    /// IMeP with the paper's verbatim protocol.
    ImePaper,
    /// IMeP with the tuned communication (the variant the harness runs).
    ImeOptimized,
    /// Block-cyclic LU with partial pivoting, block size `nb`.
    ScaLapack { nb: usize },
}

impl Solver {
    pub fn label(&self) -> &'static str {
        match self {
            Solver::ImePaper => "IMe(paper)",
            Solver::ImeOptimized => "IMe",
            Solver::ScaLapack { .. } => "ScaLAPACK",
        }
    }
}

/// A run configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scenario {
    pub n: usize,
    pub ranks: usize,
    pub layout: LoadLayout,
}

/// Model output for one `(solver, scenario)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    pub compute_s: f64,
    pub comm_s: f64,
    pub time_s: f64,
    pub energy: EnergyPrediction,
    pub flops: f64,
    pub dram_bytes: f64,
}

/// Predict time and energy for a scenario on a cluster.
pub fn predict(
    solver: Solver,
    scenario: Scenario,
    spec: &ClusterSpec,
    power: &PowerModel,
) -> Prediction {
    let m = MachineParams::from_spec(spec);
    let (time, bytes, flops): (TimeBreakdown, f64, f64) = match solver {
        Solver::ImePaper => (
            ime_time(scenario.n, scenario.ranks, &m, ImepOptions::paper()),
            ime_bytes(scenario.n),
            greenla_ime::formulas::flops_ime_ours(scenario.n) as f64,
        ),
        Solver::ImeOptimized => (
            ime_time(scenario.n, scenario.ranks, &m, ImepOptions::optimized()),
            ime_bytes(scenario.n),
            greenla_ime::formulas::flops_ime_ours(scenario.n) as f64,
        ),
        Solver::ScaLapack { nb } => (
            ge_time(scenario.n, scenario.ranks, nb, &m),
            ge_bytes(scenario.n, nb),
            greenla_linalg::flops::getrf(scenario.n) as f64
                + greenla_linalg::flops::getrs(scenario.n) as f64,
        ),
    };
    let e = energy(
        &spec.node,
        power,
        scenario.layout,
        scenario.ranks,
        &time,
        bytes,
    );
    Prediction {
        compute_s: time.compute_s,
        comm_s: time.comm_s,
        time_s: time.total_s(),
        energy: e,
        flops,
        dram_bytes: bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marconi() -> (ClusterSpec, PowerModel) {
        (ClusterSpec::marconi_a3(64), PowerModel::deterministic())
    }

    fn sc(n: usize, ranks: usize) -> Scenario {
        Scenario {
            n,
            ranks,
            layout: LoadLayout::FullLoad,
        }
    }

    #[test]
    fn scalapack_beats_ime_on_total_energy() {
        // §5.4: "ScaLAPACK consumes less energy than IMe, with a consistent
        // gap of 50% to 60%".
        let (spec, power) = marconi();
        for n in [8640, 17280, 25920, 34560] {
            for ranks in [144, 576] {
                let ime = predict(Solver::ImeOptimized, sc(n, ranks), &spec, &power);
                let ge = predict(Solver::ScaLapack { nb: 64 }, sc(n, ranks), &spec, &power);
                assert!(
                    ge.energy.total_j < ime.energy.total_j,
                    "n={n} ranks={ranks}: GE {} !< IMe {}",
                    ge.energy.total_j,
                    ime.energy.total_j
                );
            }
        }
    }

    #[test]
    fn power_gap_more_modest_than_energy_gap() {
        // §5.4: the total-energy gap is 50-60 % but the *power* gap shrinks
        // to 12-18 % — most of IMe's extra energy is extra time.
        let (spec, power) = marconi();
        let ime = predict(Solver::ImeOptimized, sc(17280, 144), &spec, &power);
        let ge = predict(Solver::ScaLapack { nb: 64 }, sc(17280, 144), &spec, &power);
        let energy_gap = 1.0 - ge.energy.total_j / ime.energy.total_j;
        let power_gap = 1.0 - ge.energy.mean_power_w / ime.energy.mean_power_w;
        assert!(
            power_gap.abs() < energy_gap,
            "power {power_gap} vs energy {energy_gap}"
        );
        assert!(energy_gap > 0.3, "energy gap {energy_gap}");
    }

    #[test]
    fn full_load_most_efficient_layout() {
        let (spec, power) = marconi();
        for n in [8640, 17280] {
            let full = predict(
                Solver::ScaLapack { nb: 64 },
                Scenario {
                    n,
                    ranks: 144,
                    layout: LoadLayout::FullLoad,
                },
                &spec,
                &power,
            );
            for layout in [LoadLayout::HalfOneSocket, LoadLayout::HalfTwoSockets] {
                let half = predict(
                    Solver::ScaLapack { nb: 64 },
                    Scenario {
                        n,
                        ranks: 144,
                        layout,
                    },
                    &spec,
                    &power,
                );
                assert!(
                    half.energy.total_j > full.energy.total_j,
                    "n={n} {layout}: {} !> {}",
                    half.energy.total_j,
                    full.energy.total_j
                );
            }
        }
    }

    #[test]
    fn energy_grows_superlinearly_in_dimension() {
        let (spec, power) = marconi();
        let e1 = predict(Solver::ImeOptimized, sc(8640, 144), &spec, &power)
            .energy
            .total_j;
        let e4 = predict(Solver::ImeOptimized, sc(34560, 144), &spec, &power)
            .energy
            .total_j;
        assert!(
            e4 / e1 > 8.0,
            "4x dimension should cost >8x energy, got {}",
            e4 / e1
        );
    }

    #[test]
    fn paper_protocol_prediction_slower_than_optimized() {
        let (spec, power) = marconi();
        let paper = predict(Solver::ImePaper, sc(8640, 576), &spec, &power);
        let opt = predict(Solver::ImeOptimized, sc(8640, 576), &spec, &power);
        assert!(paper.time_s > opt.time_s);
        assert!(paper.energy.total_j > opt.energy.total_j);
    }
}
