//! Calibration: the analytic model's predictions must track the discrete
//! simulator on configurations small enough to run both ways. This is what
//! licenses using the model at paper scale.

use greenla_cluster::placement::{LoadLayout, Placement};
// Calibration points span at least two nodes so the model's inter-node
// latency assumption matches the simulated placement.
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_ime::par::ImepOptions;
use greenla_ime::solve_imep;
use greenla_linalg::generate;
use greenla_model::{predict, MachineParams, Scenario, Solver};
use greenla_mpi::Machine;
use greenla_scalapack::pdgesv::pdgesv;

/// Simulated makespan and total flops for a solver run.
fn simulate(n: usize, ranks: usize, solver: Solver) -> (f64, u64) {
    let spec = ClusterSpec::test_cluster(8, 4);
    let placement = Placement::packed(&spec.node, ranks).unwrap();
    let power = PowerModel::scaled_deterministic(&spec.node);
    let machine = Machine::new(spec, placement, power, 77).unwrap();
    let sys = generate::diag_dominant(n, 5);
    machine.run(|ctx| {
        let world = ctx.world();
        match solver {
            Solver::ImePaper => {
                solve_imep(ctx, &world, &sys, ImepOptions::paper()).unwrap();
            }
            Solver::ImeOptimized => {
                solve_imep(ctx, &world, &sys, ImepOptions::optimized()).unwrap();
            }
            Solver::ScaLapack { nb } => {
                pdgesv(ctx, &world, &sys, nb).unwrap();
            }
        }
    });
    let makespan = machine.ledger().max_time();
    let flops = machine.ledger().total_flops();
    (makespan, flops)
}

fn model_time(n: usize, ranks: usize, solver: Solver) -> f64 {
    let spec = ClusterSpec::test_cluster(8, 4);
    let power = PowerModel::scaled_deterministic(&spec.node);
    let p = predict(
        solver,
        Scenario {
            n,
            ranks,
            layout: LoadLayout::FullLoad,
        },
        &spec,
        &power,
    );
    p.time_s
}

fn assert_within_factor(model: f64, sim: f64, factor: f64, what: &str) {
    let ratio = model / sim;
    assert!(
        ratio < factor && ratio > 1.0 / factor,
        "{what}: model {model:.6} vs sim {sim:.6} (ratio {ratio:.2}, budget ×{factor})"
    );
}

#[test]
fn ime_model_tracks_simulator() {
    for (n, ranks) in [(96, 16), (192, 16), (256, 32)] {
        for solver in [Solver::ImePaper, Solver::ImeOptimized] {
            let (sim_t, _) = simulate(n, ranks, solver);
            let model_t = model_time(n, ranks, solver);
            assert_within_factor(model_t, sim_t, 3.0, &format!("{solver:?} n={n} N={ranks}"));
        }
    }
}

#[test]
fn ge_model_tracks_simulator() {
    for (n, ranks, nb) in [(96, 16, 8), (192, 16, 16), (240, 32, 16)] {
        let solver = Solver::ScaLapack { nb };
        let (sim_t, _) = simulate(n, ranks, solver);
        let model_t = model_time(n, ranks, solver);
        assert_within_factor(model_t, sim_t, 3.0, &format!("GE n={n} N={ranks} nb={nb}"));
    }
}

#[test]
fn flop_models_match_charged_flops() {
    let (_, sim_flops) = simulate(128, 8, Solver::ImeOptimized);
    let model_flops = greenla_ime::formulas::flops_ime_ours(128) as f64;
    let ratio = sim_flops as f64 / model_flops;
    assert!((0.9..1.1).contains(&ratio), "IMe flop ratio {ratio}");

    let (_, ge_flops) = simulate(128, 8, Solver::ScaLapack { nb: 16 });
    let ge_model = greenla_linalg::flops::getrf(128) as f64;
    let ratio = ge_flops as f64 / ge_model;
    assert!((0.8..1.4).contains(&ratio), "GE flop ratio {ratio}");
}

#[test]
fn relative_ordering_agrees_between_model_and_sim() {
    // The property the harness relies on: whenever the simulator says one
    // solver is clearly faster, the model agrees.
    let n = 192;
    let ranks = 16;
    let (ime_sim, _) = simulate(n, ranks, Solver::ImeOptimized);
    let (ge_sim, _) = simulate(n, ranks, Solver::ScaLapack { nb: 16 });
    let ime_model = model_time(n, ranks, Solver::ImeOptimized);
    let ge_model = model_time(n, ranks, Solver::ScaLapack { nb: 16 });
    if ime_sim > ge_sim * 1.3 {
        assert!(
            ime_model > ge_model,
            "model flipped a clear simulator ordering"
        );
    }
    if ge_sim > ime_sim * 1.3 {
        assert!(
            ge_model > ime_model,
            "model flipped a clear simulator ordering"
        );
    }
}

#[test]
fn machine_params_consistent_between_tiers() {
    let spec = ClusterSpec::marconi_a3(4);
    let m = MachineParams::from_spec(&spec);
    // The parameters the model runs on are exactly the spec the simulator
    // charges against — no hidden second set of constants.
    assert_eq!(m.rate, spec.node.cpu.sustained_flops_per_core);
    assert_eq!(m.o, spec.net.per_message_overhead_s);
}
