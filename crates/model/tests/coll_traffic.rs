//! The closed-form α+β traffic formulas in `model::comm` must count
//! exactly the messages the simulated runtime sends: each test runs the
//! real collective on a simulated machine and compares the machine's
//! traffic tally against the formula, message for message and element for
//! element. (Communicator splits are registry-based and send nothing, so
//! a run's total traffic is the collective's alone.)

use greenla_cluster::placement::{LoadLayout, Placement};
use greenla_cluster::spec::ClusterSpec;
use greenla_cluster::PowerModel;
use greenla_model::comm;
use greenla_mpi::{Machine, TrafficSnapshot};

fn machine(ranks: usize) -> Machine {
    let spec = ClusterSpec::test_cluster(2, 4);
    let placement = Placement::layout(&spec.node, ranks, LoadLayout::FullLoad).unwrap();
    Machine::new(spec, placement, PowerModel::deterministic(), 9).unwrap()
}

/// Elements above the 512-byte switch so the sum-allreduce takes the
/// recursive-doubling path.
const BIG: usize = 100;

fn run_traffic(ranks: usize, f: impl Fn(&mut greenla_mpi::RankCtx) + Sync) -> TrafficSnapshot {
    machine(ranks).run(f).traffic
}

#[test]
fn recursive_doubling_traffic_matches_the_closed_form_power_of_two() {
    let t = run_traffic(8, |ctx| {
        let world = ctx.world();
        ctx.allreduce_sum_f64(&world, &vec![1.0; BIG]);
    });
    let (msgs, elems) = comm::allreduce_rd_traffic(8, BIG as u64);
    assert_eq!(t.msgs, msgs, "messages");
    assert_eq!(t.volume_elems(), elems, "elements");
}

#[test]
fn recursive_doubling_traffic_matches_the_closed_form_with_fold() {
    // World of 8, collective over a split communicator of 6: p₂ = 4,
    // r = 2, so the fold and unfold phases carry real messages.
    let t = run_traffic(8, |ctx| {
        let world = ctx.world();
        let in_six = (ctx.rank() < 6) as u64;
        let sub = ctx.split(&world, in_six, ctx.rank() as u64);
        if in_six == 1 {
            ctx.allreduce_sum_f64(&sub, &vec![1.0; BIG]);
        }
    });
    let (msgs, elems) = comm::allreduce_rd_traffic(6, BIG as u64);
    assert_eq!(t.msgs, msgs, "messages");
    assert_eq!(t.volume_elems(), elems, "elements");
}

#[test]
fn small_allreduce_keeps_the_tree_pair_counts() {
    // At or below the switch the runtime composes reduce + bcast trees:
    // P − 1 messages each, full payload per hop — the counts the paper's
    // formulas assume.
    let t = run_traffic(8, |ctx| {
        let world = ctx.world();
        ctx.allreduce_sum_f64(&world, &[1.0, 2.0]);
    });
    assert_eq!(t.msgs, 2 * 7, "reduce tree + bcast tree");
    assert_eq!(t.volume_elems(), 2 * 7 * 2);
}

#[test]
fn ring_allgather_traffic_matches_the_closed_form() {
    // Variable chunk lengths (rank r contributes r + 1 elements): the
    // formula depends only on the combined element count.
    let total: u64 = (1..=8).sum();
    let t = run_traffic(8, |ctx| {
        let world = ctx.world();
        let mine = vec![ctx.rank() as f64; ctx.rank() + 1];
        ctx.allgather_f64(&world, &mine);
    });
    let (msgs, elems) = comm::allgather_ring_traffic(8, total);
    assert_eq!(t.msgs, msgs, "messages");
    assert_eq!(t.volume_elems(), elems, "elements");
}
