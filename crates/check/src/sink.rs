//! The checking sink: machine-wide shared state, per-rank hook handles,
//! and the deadlock probe.

use crate::tagspace;
use crate::violation::{Rule, Violation};
use parking_lot::Mutex;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the whole machine must sit blocked with no state change before
/// the timed probe declares a deadlock. Only the thread-per-rank engine
/// needs this: its blocked waiters poll [`CheckSink::probe_deadlock`] on a
/// timer, so the grace must comfortably exceed the poll interval for an
/// in-flight message (sent, not yet polled) to never look like a deadlock.
/// The event-driven engine instead calls
/// [`CheckSink::probe_deadlock_quiescent`] at the exact moment its
/// scheduler proves no task can ever run again — no timer, no grace.
pub const DEADLOCK_GRACE: Duration = Duration::from_millis(200);

/// Which collective a rank entered (the lockstep signature's first field).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollKind {
    Barrier,
    Split,
    Bcast,
    BcastPipelined,
    Reduce,
    Gather,
    /// Recursive-doubling allreduce (the kind doubles as the lockstep
    /// algorithm discriminator: a rank taking the small-payload
    /// tree path instead records Reduce + Bcast sites, so divergent
    /// algorithm selection surfaces as COLL001).
    Allreduce,
    /// Ring allgather (same discriminator role as Allreduce: the tree
    /// fallback records Gather + Bcast sites instead).
    Allgather,
}

impl fmt::Display for CollKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CollKind::Barrier => "barrier",
            CollKind::Split => "split",
            CollKind::Bcast => "bcast",
            CollKind::BcastPipelined => "bcast_pipelined",
            CollKind::Reduce => "reduce",
            CollKind::Gather => "gather",
            CollKind::Allreduce => "allreduce",
            CollKind::Allgather => "allgather",
        })
    }
}

/// Lockstep signature of one collective call site: what every member of
/// the communicator must agree on at a given sequence position.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CollEvent {
    /// Communicator id the collective runs on.
    pub comm: u64,
    /// Per-communicator sequence number of the call site.
    pub seq: u64,
    pub kind: CollKind,
    /// Root as a communicator index, when the collective has one.
    pub root: Option<usize>,
    /// Element count when all members must agree on it (reduce lengths,
    /// pipelined chunk sizes); 0 when receivers cannot know it (bcast).
    pub elems: u64,
}

fn fmt_root(root: Option<usize>) -> String {
    match root {
        Some(r) => r.to_string(),
        None => "-".to_string(),
    }
}

/// What a rank is blocked on right now (the wait-for graph's node labels).
#[derive(Clone, Debug)]
enum Wait {
    Running,
    Recv {
        src: usize,
        comm: u64,
        tag: u64,
    },
    Coll {
        comm: u64,
        seq: u64,
        members: Arc<Vec<usize>>,
    },
}

/// Lockstep record for one `(communicator, sequence)` call site.
struct CollSite {
    kind: CollKind,
    root: Option<usize>,
    elems: u64,
    first_rank: usize,
    seen: usize,
    expected: usize,
    reported: bool,
}

/// Figure-2 protocol state for one node.
#[derive(Default)]
struct MonState {
    node_comm: Option<u64>,
    started: bool,
    end_t: Option<f64>,
}

struct State {
    node_of: Vec<usize>,
    waits: Vec<Wait>,
    finished: Vec<bool>,
    last_clock: Vec<f64>,
    clock_flagged: Vec<bool>,
    overflow_flagged: Vec<bool>,
    last_coll: Vec<Option<(u64, CollKind)>>,
    last_compute: Vec<Option<(f64, f64)>>,
    colls: HashMap<(u64, u64), CollSite>,
    monitors: HashMap<usize, MonState>,
    straddle_flagged: HashSet<(usize, usize)>,
    probe_epoch: u64,
    probe_since: Instant,
    deadlock_msg: Option<String>,
    violations: Vec<Violation>,
}

impl State {
    fn new(node_of: Vec<usize>) -> Self {
        let n = node_of.len();
        Self {
            node_of,
            waits: vec![Wait::Running; n],
            finished: vec![false; n],
            last_clock: vec![0.0; n],
            clock_flagged: vec![false; n],
            overflow_flagged: vec![false; n],
            last_coll: vec![None; n],
            last_compute: vec![None; n],
            colls: HashMap::new(),
            monitors: HashMap::new(),
            straddle_flagged: HashSet::new(),
            probe_epoch: 0,
            probe_since: Instant::now(),
            deadlock_msg: None,
            violations: Vec::new(),
        }
    }

    /// Per-rank clock monotonicity (CLK001); flags at most once per rank.
    fn note_clock(&mut self, rank: usize, t: f64) {
        if t < self.last_clock[rank] && !self.clock_flagged[rank] {
            self.clock_flagged[rank] = true;
            self.violations.push(Violation::new(
                Rule::ClockRegression,
                vec![rank],
                t,
                format!(
                    "rank {rank}'s virtual clock moved backwards: {:.6e}s after {:.6e}s",
                    t, self.last_clock[rank]
                ),
            ));
        }
        if t > self.last_clock[rank] {
            self.last_clock[rank] = t;
        }
    }

    fn in_same_coll(&self, rank: usize, comm: u64, seq: u64) -> bool {
        matches!(
            &self.waits[rank],
            Wait::Coll { comm: c, seq: s, .. } if *c == comm && *s == seq
        )
    }

    /// Who is rank `r` waiting for? One representative edge of the
    /// wait-for graph.
    fn successor(&self, r: usize) -> Option<usize> {
        match &self.waits[r] {
            Wait::Running => None,
            Wait::Recv { src, .. } => Some(*src),
            Wait::Coll { comm, seq, members } => members
                .iter()
                .copied()
                .find(|&m| m != r && !self.in_same_coll(m, *comm, *seq)),
        }
    }

    fn find_cycle(&self, blocked: &[usize]) -> Option<Vec<usize>> {
        let mut visited: HashSet<usize> = HashSet::new();
        for &start in blocked {
            if visited.contains(&start) {
                continue;
            }
            let mut path = vec![start];
            let mut on_path: HashMap<usize, usize> = HashMap::new();
            on_path.insert(start, 0);
            let mut cur = start;
            while let Some(next) = self.successor(cur) {
                if self.finished.get(next).copied().unwrap_or(true) {
                    break;
                }
                if let Some(&pos) = on_path.get(&next) {
                    let mut cyc = path[pos..].to_vec();
                    cyc.push(next);
                    return Some(cyc);
                }
                if visited.contains(&next) {
                    break;
                }
                on_path.insert(next, path.len());
                path.push(next);
                cur = next;
            }
            visited.extend(path);
        }
        None
    }

    fn describe_deadlock(&self, blocked: &[usize]) -> String {
        let mut s = format!(
            "deadlock: {} blocked rank(s), no progress possible",
            blocked.len()
        );
        for &r in blocked {
            match &self.waits[r] {
                Wait::Recv { src, comm, tag } => {
                    s.push_str(&format!(
                        "\n  rank {r}: recv(src={src}, comm={comm}, tag={})",
                        tagspace::describe_tag(*tag)
                    ));
                }
                Wait::Coll { comm, seq, members } => {
                    let missing: Vec<usize> = members
                        .iter()
                        .copied()
                        .filter(|&m| m != r && !self.in_same_coll(m, *comm, *seq))
                        .collect();
                    s.push_str(&format!(
                        "\n  rank {r}: collective(comm={comm}, seq={seq}) waiting for ranks {missing:?}"
                    ));
                }
                Wait::Running => {}
            }
        }
        if let Some(cycle) = self.find_cycle(blocked) {
            let chain: Vec<String> = cycle.iter().map(|r| r.to_string()).collect();
            s.push_str(&format!("\n  cycle: {}", chain.join(" -> ")));
        } else if let Some((w, fin)) = blocked.iter().find_map(|&r| {
            self.successor(r)
                .filter(|&n| self.finished.get(n).copied().unwrap_or(false))
                .map(|n| (r, n))
        }) {
            s.push_str(&format!(
                "\n  rank {w} waits on rank {fin}, which has already finished"
            ));
        }
        s
    }
}

struct Shared {
    /// Bumped on every blocking-relevant state change; the probe only
    /// declares a deadlock after the epoch has been stable for
    /// [`DEADLOCK_GRACE`].
    epoch: AtomicU64,
    state: Mutex<State>,
}

impl Shared {
    fn bump(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    fn probe(&self) -> Option<String> {
        let epoch = self.epoch.load(Ordering::SeqCst);
        let mut st = self.state.lock();
        if st.deadlock_msg.is_some() {
            return None; // already declared; the poison path reports it
        }
        if st.probe_epoch != epoch {
            st.probe_epoch = epoch;
            st.probe_since = Instant::now();
            return None;
        }
        if st.waits.is_empty() {
            return None;
        }
        let mut blocked = Vec::new();
        for r in 0..st.waits.len() {
            if st.finished[r] {
                continue;
            }
            if matches!(st.waits[r], Wait::Running) {
                return None; // someone can still make progress
            }
            blocked.push(r);
        }
        if blocked.is_empty() || st.probe_since.elapsed() < DEADLOCK_GRACE {
            return None;
        }
        let msg = st.describe_deadlock(&blocked);
        let t = blocked
            .iter()
            .map(|&r| st.last_clock[r])
            .fold(0.0f64, f64::max);
        st.violations
            .push(Violation::new(Rule::Deadlock, blocked, t, msg.clone()));
        st.deadlock_msg = Some(msg.clone());
        Some(msg)
    }

    /// Grace-free probe for the event engine's quiescence signal. The
    /// scheduler has already proved every task is blocked and no wake is
    /// in flight, so there is no epoch to re-check and no message to wait
    /// out: declare immediately if every unfinished rank holds a wait
    /// record. Latches and records DL001 exactly like the timed probe.
    fn probe_quiescent(&self) -> Option<String> {
        let mut st = self.state.lock();
        if st.deadlock_msg.is_some() {
            return None; // already declared; the poison path reports it
        }
        if st.waits.is_empty() {
            return None;
        }
        let mut blocked = Vec::new();
        for r in 0..st.waits.len() {
            if st.finished[r] {
                continue;
            }
            if matches!(st.waits[r], Wait::Running) {
                return None;
            }
            blocked.push(r);
        }
        if blocked.is_empty() {
            return None;
        }
        let msg = st.describe_deadlock(&blocked);
        let t = blocked
            .iter()
            .map(|&r| st.last_clock[r])
            .fold(0.0f64, f64::max);
        st.violations
            .push(Violation::new(Rule::Deadlock, blocked, t, msg.clone()));
        st.deadlock_msg = Some(msg.clone());
        Some(msg)
    }
}

/// Machine-wide checking handle, mirroring `greenla_trace::TraceSink`:
/// cheap to clone, a disabled sink holds no allocation, and every hook
/// behind it costs one branch. The sink checks one machine run at a time
/// ([`CheckSink::begin_run`] resets all state).
#[derive(Clone, Default)]
pub struct CheckSink {
    shared: Option<Arc<Shared>>,
}

impl CheckSink {
    /// A sink that checks nothing.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A sink that enforces the full rule set.
    pub fn enabled() -> Self {
        Self {
            shared: Some(Arc::new(Shared {
                epoch: AtomicU64::new(0),
                state: Mutex::new(State::new(Vec::new())),
            })),
        }
    }

    /// Is this sink checking?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Reset all per-run state for a run with `node_of.len()` ranks,
    /// rank `r` placed on node `node_of[r]`.
    pub fn begin_run(&self, node_of: Vec<usize>) {
        if let Some(sh) = &self.shared {
            *sh.state.lock() = State::new(node_of);
            sh.bump();
        }
    }

    /// Hook handle for one rank.
    pub fn checker(&self, rank: usize, node: usize) -> RankChecker {
        RankChecker {
            shared: self.shared.clone(),
            rank,
            node,
        }
    }

    /// Run the deadlock probe: `Some(diagnostic)` the first time a
    /// deadlock is declared. Intended to be called from blocked waiters'
    /// poll loops.
    pub fn probe_deadlock(&self) -> Option<String> {
        self.shared.as_ref().and_then(|sh| sh.probe())
    }

    /// Grace-free variant for the event-driven scheduler: called once,
    /// at the moment the engine observes quiescence (every task blocked,
    /// no wake in flight), instead of on a timer. See
    /// [`DEADLOCK_GRACE`] for why the timed probe needs a grace period
    /// and this one does not.
    pub fn probe_deadlock_quiescent(&self) -> Option<String> {
        self.shared.as_ref().and_then(|sh| sh.probe_quiescent())
    }

    /// The deadlock diagnostic, if one was declared this run.
    pub fn deadlock_report(&self) -> Option<String> {
        self.shared
            .as_ref()
            .and_then(|sh| sh.state.lock().deadlock_msg.clone())
    }

    /// The abort message blocked ranks should panic with once the run is
    /// poisoned: the deadlock diagnostic when one exists, the generic
    /// peer-failure message otherwise.
    pub fn abort_message(&self) -> String {
        match self.deadlock_report() {
            Some(m) => format!("simulated MPI run aborted: {m}"),
            None => "simulated MPI run aborted: a peer rank failed".to_string(),
        }
    }

    /// Report mailbox residue found after rank `rank` returned: each
    /// leftover is `(src, comm_id, tag, arrival_s)` of a message that was
    /// sent but never received (MSG001).
    pub fn report_residue(&self, rank: usize, leftovers: &[(usize, u64, u64, f64)]) {
        let Some(sh) = &self.shared else {
            return;
        };
        let mut st = sh.state.lock();
        for &(src, comm, tag, arrival) in leftovers {
            let msg = format!(
                "finalize: rank {rank}'s mailbox still holds a message from rank {src} \
                 (comm {comm}, tag {}, arrival {arrival:.6e}s) that was never received",
                tagspace::describe_tag(tag)
            );
            st.violations.push(Violation::new(
                Rule::MessageLeak,
                vec![src, rank],
                arrival,
                msg,
            ));
        }
    }

    /// Snapshot of all violations recorded so far, in recording order.
    pub fn violations(&self) -> Vec<Violation> {
        self.shared
            .as_ref()
            .map(|sh| sh.state.lock().violations.clone())
            .unwrap_or_default()
    }
}

/// Per-rank hook handle. Every method is a no-op (one branch) when the
/// parent sink is disabled, and none of them ever touches a virtual
/// clock — checking a run cannot change its timings.
pub struct RankChecker {
    shared: Option<Arc<Shared>>,
    rank: usize,
    node: usize,
}

impl RankChecker {
    /// A checker that records nothing (for contexts built without a sink).
    pub fn disabled() -> Self {
        Self {
            shared: None,
            rank: 0,
            node: 0,
        }
    }

    /// Is this checker active? Callers can skip assembling hook arguments
    /// when false.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    fn with_state(&self, f: impl FnOnce(&mut State, usize, usize)) {
        if let Some(sh) = &self.shared {
            let mut st = sh.state.lock();
            if self.rank < st.waits.len() {
                f(&mut st, self.rank, self.node);
            }
        }
    }

    /// A compute (or memory-touch) interval `[t0, t1]` completed.
    pub fn compute(&mut self, t0: f64, t1: f64) {
        self.with_state(|st, rank, node| {
            st.note_clock(rank, t1);
            st.last_compute[rank] = Some((t0, t1));
            if let Some(te) = st.monitors.get(&node).and_then(|m| m.end_t) {
                if t0 < te && t1 > te && st.straddle_flagged.insert((node, rank)) {
                    st.violations.push(Violation::new(
                        Rule::MonitorWindowStraddle,
                        vec![rank],
                        t1,
                        format!(
                            "rank {rank}'s work interval [{t0:.6e}s, {t1:.6e}s] straddles \
                             node {node}'s measurement end at {te:.6e}s: the monitoring \
                             window missed {:.6e}s of its work",
                            t1 - te
                        ),
                    ));
                }
            }
        });
    }

    /// A message left for `dst` at virtual time `t`.
    pub fn sent(&mut self, _dst: usize, _comm: u64, _tag: u64, t: f64) {
        if let Some(sh) = &self.shared {
            {
                let mut st = sh.state.lock();
                if self.rank < st.waits.len() {
                    st.note_clock(self.rank, t);
                }
            }
            sh.bump();
        }
    }

    /// The rank is about to block in a receive.
    pub fn block_recv(&mut self, src: usize, comm: u64, tag: u64, t: f64) {
        if let Some(sh) = &self.shared {
            self.with_state(|st, rank, _| {
                st.note_clock(rank, t);
                st.waits[rank] = Wait::Recv { src, comm, tag };
            });
            sh.bump();
        }
    }

    /// The receive completed at `t` for a message that arrived at
    /// `arrival` (CLK002 checks causality).
    pub fn unblock_recv(&mut self, arrival: f64, t: f64) {
        if let Some(sh) = &self.shared {
            self.with_state(|st, rank, _| {
                st.note_clock(rank, t);
                if t + 1e-12 < arrival {
                    st.violations.push(Violation::new(
                        Rule::RecvBeforeArrival,
                        vec![rank],
                        t,
                        format!(
                            "rank {rank} completed a receive at {t:.6e}s but the message \
                             only arrives at {arrival:.6e}s"
                        ),
                    ));
                }
                st.waits[rank] = Wait::Running;
            });
            sh.bump();
        }
    }

    /// The rank entered a collective. The [`CollEvent`] carries the
    /// lockstep signature (COLL001); barrier/split also become wait-for
    /// graph nodes until [`RankChecker::coll_done`].
    pub fn enter_coll(&mut self, ev: CollEvent, members: &[usize], t: f64) {
        let CollEvent {
            comm,
            seq,
            kind,
            root,
            elems,
        } = ev;
        if let Some(sh) = &self.shared {
            self.with_state(|st, rank, _| {
                st.note_clock(rank, t);
                st.last_coll[rank] = Some((comm, kind));
                match st.colls.entry((comm, seq)) {
                    Entry::Vacant(v) => {
                        v.insert(CollSite {
                            kind,
                            root,
                            elems,
                            first_rank: rank,
                            seen: 1,
                            expected: members.len(),
                            reported: false,
                        });
                    }
                    Entry::Occupied(mut o) => {
                        let site = o.get_mut();
                        site.seen += 1;
                        let mismatch = (site.kind, site.root, site.elems) != (kind, root, elems);
                        if mismatch && !site.reported {
                            site.reported = true;
                            let msg = format!(
                                "collective mismatch on comm {comm} at sequence {seq}: \
                                 rank {} issued {}(root={}, elems={}) but rank {rank} \
                                 issued {}(root={}, elems={})",
                                site.first_rank,
                                site.kind,
                                fmt_root(site.root),
                                site.elems,
                                kind,
                                fmt_root(root),
                                elems
                            );
                            let first = site.first_rank;
                            st.violations.push(Violation::new(
                                Rule::CollectiveMismatch,
                                vec![first, rank],
                                t,
                                msg,
                            ));
                        } else if site.seen >= site.expected {
                            o.remove(); // all members checked in; site complete
                        }
                    }
                }
                if matches!(kind, CollKind::Barrier | CollKind::Split) {
                    st.waits[rank] = Wait::Coll {
                        comm,
                        seq,
                        members: Arc::new(members.to_vec()),
                    };
                }
            });
            sh.bump();
        }
    }

    /// A blocking collective (barrier/split) released this rank at `t`.
    pub fn coll_done(&mut self, t: f64) {
        if let Some(sh) = &self.shared {
            self.with_state(|st, rank, _| {
                st.note_clock(rank, t);
                st.waits[rank] = Wait::Running;
            });
            sh.bump();
        }
    }

    /// Tag-space audit for one collective: sequence number `seq` and (for
    /// pipelined transfers) `data_chunks` chunk ids must fit their
    /// reserved bit-fields (COLL002). Flags at most once per rank.
    pub fn coll_tag_space(&mut self, seq: u64, data_chunks: u64, t: f64) {
        self.with_state(|st, rank, _| {
            if st.overflow_flagged[rank] {
                return;
            }
            if !tagspace::seq_fits(seq) {
                st.overflow_flagged[rank] = true;
                st.violations.push(Violation::new(
                    Rule::CollectiveTagOverflow,
                    vec![rank],
                    t,
                    format!(
                        "collective sequence number {seq} on rank {rank} overflows the \
                         {}-bit field of the COLL_TAG space (max {})",
                        tagspace::SEQ_BITS,
                        tagspace::MAX_SEQ
                    ),
                ));
            } else if data_chunks > tagspace::MAX_PIPELINE_CHUNKS {
                st.overflow_flagged[rank] = true;
                st.violations.push(Violation::new(
                    Rule::CollectiveTagOverflow,
                    vec![rank],
                    t,
                    format!(
                        "pipelined collective on rank {rank} uses {data_chunks} chunks, \
                         colliding with the reserved chunk markers (max {})",
                        tagspace::MAX_PIPELINE_CHUNKS
                    ),
                ));
            }
        });
    }

    /// The node communicator produced by `split_shared` in the Figure-2
    /// choreography.
    pub fn monitor_node_comm(&mut self, comm_id: u64, t: f64) {
        self.with_state(|st, rank, node| {
            st.note_clock(rank, t);
            st.monitors.entry(node).or_default().node_comm = Some(comm_id);
        });
    }

    /// `start_monitoring` ran on this rank (MON001 checks the designation).
    pub fn monitor_start(&mut self, t: f64) {
        self.with_state(|st, rank, node| {
            st.note_clock(rank, t);
            let designated = st
                .node_of
                .iter()
                .enumerate()
                .filter(|&(_, &n)| n == node)
                .map(|(r, _)| r)
                .max();
            if designated != Some(rank) {
                let msg = format!(
                    "start_monitoring on rank {rank} (node {node}), but the designated \
                     monitoring rank is the node's highest rank {}",
                    designated.map_or("?".to_string(), |r| r.to_string())
                );
                st.violations
                    .push(Violation::new(Rule::MonitorDesignation, vec![rank], t, msg));
            }
            st.monitors.entry(node).or_default().started = true;
        });
    }

    /// `end_monitoring` ran on this rank at `t` (MON002/MON003/MON004).
    pub fn monitor_end(&mut self, t: f64) {
        self.with_state(|st, rank, node| {
            st.note_clock(rank, t);
            let (started, node_comm) = {
                let ms = st.monitors.entry(node).or_default();
                (ms.started, ms.node_comm)
            };
            if !started {
                st.violations.push(Violation::new(
                    Rule::MonitorMissingStart,
                    vec![rank],
                    t,
                    format!(
                        "end_monitoring on rank {rank} (node {node}) without a matching \
                         start_monitoring"
                    ),
                ));
            }
            let barrier_ok = matches!(
                (node_comm, st.last_coll[rank]),
                (Some(nc), Some((c, CollKind::Barrier))) if c == nc
            );
            if !barrier_ok {
                let last = match st.last_coll[rank] {
                    Some((c, k)) => format!("{k} on comm {c}"),
                    None => "no collective at all".to_string(),
                };
                st.violations.push(Violation::new(
                    Rule::MonitorBarrierBeforeEnd,
                    vec![rank],
                    t,
                    format!(
                        "end_monitoring on rank {rank} (node {node}) is not immediately \
                         preceded by a barrier on the node communicator (last collective: \
                         {last}); Figure 2 requires the node barrier so the window covers \
                         all of the node's work"
                    ),
                ));
            }
            st.monitors.entry(node).or_default().end_t = Some(t);
            // Work already recorded past the measurement end (MON004).
            let mut straddles = Vec::new();
            for r in 0..st.node_of.len() {
                if st.node_of[r] != node {
                    continue;
                }
                if let Some((a, b)) = st.last_compute[r] {
                    if a < t && b > t && st.straddle_flagged.insert((node, r)) {
                        straddles.push((r, a, b));
                    }
                }
            }
            for (r, a, b) in straddles {
                st.violations.push(Violation::new(
                    Rule::MonitorWindowStraddle,
                    vec![r],
                    t,
                    format!(
                        "rank {r}'s work interval [{a:.6e}s, {b:.6e}s] straddles node \
                         {node}'s measurement end at {t:.6e}s: the monitoring window \
                         missed {:.6e}s of its work",
                        b - t
                    ),
                ));
            }
        });
    }

    /// The rank's closure returned at virtual time `t`; it no longer
    /// participates in the wait-for graph.
    pub fn rank_finished(&mut self, t: f64) {
        if let Some(sh) = &self.shared {
            self.with_state(|st, rank, _| {
                st.note_clock(rank, t);
                st.finished[rank] = true;
                st.waits[rank] = Wait::Running;
            });
            sh.bump();
        }
    }

    /// See [`CheckSink::probe_deadlock`].
    pub fn probe_deadlock(&self) -> Option<String> {
        self.shared.as_ref().and_then(|sh| sh.probe())
    }

    /// See [`CheckSink::probe_deadlock_quiescent`].
    pub fn probe_deadlock_quiescent(&self) -> Option<String> {
        self.shared.as_ref().and_then(|sh| sh.probe_quiescent())
    }

    /// See [`CheckSink::abort_message`].
    pub fn abort_message(&self) -> String {
        let report = self
            .shared
            .as_ref()
            .and_then(|sh| sh.state.lock().deadlock_msg.clone());
        match report {
            Some(m) => format!("simulated MPI run aborted: {m}"),
            None => "simulated MPI run aborted: a peer rank failed".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(comm: u64, seq: u64, kind: CollKind, root: Option<usize>, elems: u64) -> CollEvent {
        CollEvent {
            comm,
            seq,
            kind,
            root,
            elems,
        }
    }

    fn sink(n: usize) -> CheckSink {
        let s = CheckSink::enabled();
        s.begin_run(vec![0; n]);
        s
    }

    #[test]
    fn disabled_sink_ignores_everything() {
        let s = CheckSink::disabled();
        assert!(!s.is_enabled());
        let mut c = s.checker(0, 0);
        assert!(!c.enabled());
        c.compute(1.0, 0.5); // would be CLK001 if enabled
        c.block_recv(1, 0, 7, 0.0);
        assert!(s.probe_deadlock().is_none());
        assert!(s.violations().is_empty());
    }

    #[test]
    fn clean_hook_sequence_yields_no_violations() {
        let s = sink(2);
        let mut c0 = s.checker(0, 0);
        let mut c1 = s.checker(1, 0);
        c0.compute(0.0, 1.0);
        c0.sent(1, 0, 7, 1.0);
        c1.block_recv(0, 0, 7, 0.0);
        c1.unblock_recv(1.5, 1.5);
        c0.enter_coll(ev(0, 0, CollKind::Barrier, None, 0), &[0, 1], 1.0);
        c1.enter_coll(ev(0, 0, CollKind::Barrier, None, 0), &[0, 1], 1.5);
        c0.coll_done(2.0);
        c1.coll_done(2.0);
        c0.rank_finished(2.0);
        c1.rank_finished(2.0);
        assert!(s.violations().is_empty(), "{:?}", s.violations());
    }

    #[test]
    fn clock_regression_flagged_once() {
        let s = sink(1);
        let mut c = s.checker(0, 0);
        c.compute(0.0, 2.0);
        c.compute(0.5, 0.6);
        c.compute(0.1, 0.2); // second regression must not re-report
        let v = s.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::ClockRegression);
        assert_eq!(v[0].ranks, vec![0]);
    }

    #[test]
    fn recv_before_arrival_flagged() {
        let s = sink(2);
        let mut c = s.checker(1, 0);
        c.block_recv(0, 0, 3, 0.0);
        c.unblock_recv(5.0, 1.0); // completes 4 s before the arrival
        let v = s.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::RecvBeforeArrival);
    }

    #[test]
    fn collective_root_mismatch_reported_once() {
        let s = sink(2);
        let mut c0 = s.checker(0, 0);
        let mut c1 = s.checker(1, 0);
        c0.enter_coll(ev(0, 0, CollKind::Bcast, Some(0), 0), &[0, 1], 0.0);
        c1.enter_coll(ev(0, 0, CollKind::Bcast, Some(1), 0), &[0, 1], 0.0);
        let v = s.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::CollectiveMismatch);
        assert_eq!(v[0].ranks, vec![0, 1]);
        assert!(v[0].message.contains("root=0") && v[0].message.contains("root=1"));
    }

    #[test]
    fn matching_collectives_leave_no_state_behind() {
        let s = sink(2);
        let mut c0 = s.checker(0, 0);
        let mut c1 = s.checker(1, 0);
        for seq in 0..10 {
            c0.enter_coll(ev(0, seq, CollKind::Reduce, Some(0), 4), &[0, 1], 0.0);
            c1.enter_coll(ev(0, seq, CollKind::Reduce, Some(0), 4), &[0, 1], 0.0);
        }
        assert!(s.violations().is_empty());
        let sh = s.shared.as_ref().unwrap();
        assert!(
            sh.state.lock().colls.is_empty(),
            "completed sites must be garbage-collected"
        );
    }

    #[test]
    fn tag_overflow_flagged() {
        let s = sink(1);
        let mut c = s.checker(0, 0);
        c.coll_tag_space(tagspace::MAX_SEQ, 0, 0.0); // last valid seq: fine
        assert!(s.violations().is_empty());
        c.coll_tag_space(tagspace::MAX_SEQ + 1, 0, 0.0);
        let v = s.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::CollectiveTagOverflow);
    }

    #[test]
    fn wrong_monitor_designation_flagged() {
        let s = CheckSink::enabled();
        s.begin_run(vec![0, 0]); // ranks 0 and 1 on node 0
        let mut c = s.checker(0, 0);
        c.monitor_start(0.0);
        let v = s.violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::MonitorDesignation);
        assert!(v[0].message.contains("highest rank 1"), "{}", v[0].message);
    }

    #[test]
    fn end_without_start_or_barrier_flagged() {
        let s = sink(1);
        let mut c = s.checker(0, 0);
        c.monitor_end(1.0);
        let rules: Vec<Rule> = s.violations().iter().map(|v| v.rule).collect();
        assert!(rules.contains(&Rule::MonitorMissingStart), "{rules:?}");
        assert!(rules.contains(&Rule::MonitorBarrierBeforeEnd), "{rules:?}");
    }

    #[test]
    fn straddling_compute_flagged_in_both_hook_orders() {
        // end_monitoring sees an already-recorded straddling interval…
        let s = CheckSink::enabled();
        s.begin_run(vec![0, 0]);
        let mut worker = s.checker(0, 0);
        let mut mon = s.checker(1, 0);
        mon.monitor_node_comm(5, 0.0);
        mon.monitor_start(0.0);
        worker.compute(0.1, 9.0);
        mon.enter_coll(ev(5, 0, CollKind::Barrier, None, 0), &[0, 1], 0.2);
        mon.coll_done(0.3);
        mon.monitor_end(0.3);
        let rules: Vec<Rule> = s.violations().iter().map(|v| v.rule).collect();
        assert_eq!(rules, vec![Rule::MonitorWindowStraddle], "{rules:?}");

        // …and a compute recorded after the end is caught by the compute hook.
        let s2 = CheckSink::enabled();
        s2.begin_run(vec![0, 0]);
        let mut worker2 = s2.checker(0, 0);
        let mut mon2 = s2.checker(1, 0);
        mon2.monitor_node_comm(5, 0.0);
        mon2.monitor_start(0.0);
        mon2.enter_coll(ev(5, 0, CollKind::Barrier, None, 0), &[0, 1], 0.2);
        mon2.coll_done(0.3);
        mon2.monitor_end(0.3);
        worker2.compute(0.1, 9.0);
        let rules2: Vec<Rule> = s2.violations().iter().map(|v| v.rule).collect();
        assert_eq!(rules2, vec![Rule::MonitorWindowStraddle], "{rules2:?}");
    }

    #[test]
    fn residue_reported_per_leftover_message() {
        let s = sink(2);
        s.report_residue(1, &[(0, 0, 7, 0.25)]);
        let v = s.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::MessageLeak);
        assert_eq!(v[0].ranks, vec![0, 1]);
        assert!(v[0].message.contains("tag 7"), "{}", v[0].message);
    }

    #[test]
    fn recv_cycle_declared_as_deadlock_with_cycle_diagnostic() {
        let s = sink(2);
        let mut c0 = s.checker(0, 0);
        let mut c1 = s.checker(1, 0);
        c0.block_recv(1, 0, 7, 0.0);
        c1.block_recv(0, 0, 9, 0.0);
        assert!(s.probe_deadlock().is_none(), "grace period must hold");
        std::thread::sleep(DEADLOCK_GRACE + Duration::from_millis(30));
        let msg = s.probe_deadlock().expect("deadlock must be declared");
        assert!(msg.contains("cycle: 0 -> 1 -> 0"), "{msg}");
        assert!(msg.contains("tag=7"), "{msg}");
        let v = s.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Deadlock);
        assert_eq!(v[0].ranks, vec![0, 1]);
        // Declared once; later probes stay quiet.
        assert!(s.probe_deadlock().is_none());
        assert!(
            s.abort_message().contains("deadlock"),
            "{}",
            s.abort_message()
        );
    }

    #[test]
    fn quiescent_probe_declares_without_grace() {
        let s = sink(2);
        let mut c0 = s.checker(0, 0);
        let mut c1 = s.checker(1, 0);
        c0.block_recv(1, 0, 7, 0.0);
        assert!(
            s.probe_deadlock_quiescent().is_none(),
            "rank 1 is still running"
        );
        c1.block_recv(0, 0, 9, 0.0);
        let msg = s
            .probe_deadlock_quiescent()
            .expect("quiescence needs no grace period");
        assert!(msg.contains("cycle: 0 -> 1 -> 0"), "{msg}");
        let v = s.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Deadlock);
        // Declared once; both probes stay quiet afterwards.
        assert!(s.probe_deadlock_quiescent().is_none());
        assert!(s.probe_deadlock().is_none());
    }

    #[test]
    fn wait_on_finished_rank_is_named() {
        let s = sink(2);
        let mut c0 = s.checker(0, 0);
        let mut c1 = s.checker(1, 0);
        c1.rank_finished(1.0);
        c0.block_recv(1, 0, 4, 0.5);
        assert!(
            s.probe_deadlock().is_none(),
            "first probe latches the epoch"
        );
        std::thread::sleep(DEADLOCK_GRACE + Duration::from_millis(30));
        let msg = s.probe_deadlock().expect("all live ranks are blocked");
        assert!(msg.contains("rank 0 waits on rank 1"), "{msg}");
        assert!(msg.contains("already finished"), "{msg}");
    }

    #[test]
    fn running_rank_prevents_deadlock_declaration() {
        let s = sink(2);
        let mut c0 = s.checker(0, 0);
        c0.block_recv(1, 0, 4, 0.0);
        // Rank 1 is Running: never a deadlock, no matter how long we wait.
        std::thread::sleep(DEADLOCK_GRACE + Duration::from_millis(30));
        assert!(s.probe_deadlock().is_none());
        assert!(s.violations().is_empty());
    }

    #[test]
    fn epoch_bump_resets_the_grace_timer() {
        let s = sink(2);
        let mut c0 = s.checker(0, 0);
        let mut c1 = s.checker(1, 0);
        c0.block_recv(1, 0, 4, 0.0);
        c1.block_recv(0, 0, 4, 0.0);
        assert!(s.probe_deadlock().is_none());
        std::thread::sleep(Duration::from_millis(120));
        // Progress happens: rank 1 wakes up and re-blocks.
        c1.unblock_recv(0.0, 0.1);
        c1.block_recv(0, 0, 5, 0.1);
        assert!(s.probe_deadlock().is_none(), "epoch changed: timer resets");
        std::thread::sleep(Duration::from_millis(120));
        // Only 120 ms of stability since the reset: still within grace.
        assert!(s.probe_deadlock().is_none());
        std::thread::sleep(Duration::from_millis(120));
        assert!(s.probe_deadlock().is_some());
    }
}
