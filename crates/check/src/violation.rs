//! Structured diagnostics: rule identifiers and the violations they emit.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The checker's rule set. Each variant is one lint with a stable
/// identifier (printed in diagnostics, matched by tests and CI).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rule {
    /// DL001 — every live rank is blocked and no progress is possible.
    Deadlock,
    /// MSG001 — a message was sent but never received (mailbox residue at
    /// finalize).
    MessageLeak,
    /// COLL001 — ranks of one communicator issued different collectives
    /// (kind, root, or element count) at the same sequence position.
    CollectiveMismatch,
    /// COLL002 — a collective sequence number or chunk id overflowed its
    /// reserved bit-field in the `COLL_TAG` tag space.
    CollectiveTagOverflow,
    /// MON001 — `start_monitoring` ran on a rank that is not the highest
    /// rank of its node.
    MonitorDesignation,
    /// MON002 — `end_monitoring` ran on a node that never started
    /// monitoring.
    MonitorMissingStart,
    /// MON003 — `end_monitoring` was not immediately preceded by a barrier
    /// on the node communicator (the Figure-2 correctness rule).
    MonitorBarrierBeforeEnd,
    /// MON004 — a rank's work interval straddles its node's measurement
    /// end: the monitoring window missed part of the node's work.
    MonitorWindowStraddle,
    /// CLK001 — a rank's virtual clock moved backwards.
    ClockRegression,
    /// CLK002 — a receive completed before the message's virtual arrival
    /// time.
    RecvBeforeArrival,
}

impl Rule {
    /// Stable diagnostic identifier.
    pub fn id(&self) -> &'static str {
        match self {
            Rule::Deadlock => "DL001",
            Rule::MessageLeak => "MSG001",
            Rule::CollectiveMismatch => "COLL001",
            Rule::CollectiveTagOverflow => "COLL002",
            Rule::MonitorDesignation => "MON001",
            Rule::MonitorMissingStart => "MON002",
            Rule::MonitorBarrierBeforeEnd => "MON003",
            Rule::MonitorWindowStraddle => "MON004",
            Rule::ClockRegression => "CLK001",
            Rule::RecvBeforeArrival => "CLK002",
        }
    }

    /// One-line suggested fix, printed with every diagnostic.
    pub fn suggestion(&self) -> &'static str {
        match self {
            Rule::Deadlock => {
                "order matching sends/receives consistently and make every \
                 member of a communicator reach each collective"
            }
            Rule::MessageLeak => {
                "match every send with a receive on the same (source, \
                 communicator, tag) before the rank returns"
            }
            Rule::CollectiveMismatch => {
                "issue the same collective with the same root and element \
                 count on every member of the communicator, in the same order"
            }
            Rule::CollectiveTagOverflow => {
                "keep per-communicator collective counts below 2^43 and \
                 pipelined chunk counts below 2^20 - 2, or widen the tag \
                 bit-fields"
            }
            Rule::MonitorDesignation => {
                "call start_monitoring only on the highest rank of the node \
                 communicator (Comm::is_highest)"
            }
            Rule::MonitorMissingStart => {
                "call start_monitoring before the measured region; use \
                 monitored_run to get the full Figure-2 choreography"
            }
            Rule::MonitorBarrierBeforeEnd => {
                "barrier on the node communicator immediately before \
                 end_monitoring so the window covers all of the node's work"
            }
            Rule::MonitorWindowStraddle => {
                "stop monitoring only after every rank of the node finished \
                 its share (node barrier before end_monitoring)"
            }
            Rule::ClockRegression => {
                "never move a rank's virtual clock backwards; charge time \
                 through compute/busy_until only"
            }
            Rule::RecvBeforeArrival => {
                "complete receives no earlier than the message's arrival \
                 time (clock causality)"
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One diagnostic: which rule fired, on which ranks, when (virtual time),
/// and a human-readable account of what happened.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// The rule that fired.
    pub rule: Rule,
    /// Global ranks involved (sorted, deduplicated).
    pub ranks: Vec<usize>,
    /// Virtual time of the violation in seconds (the latest involved
    /// clock when the rule fired).
    pub t_s: f64,
    /// What happened, naming ranks, tags, and communicators.
    pub message: String,
    /// Suggested fix (from [`Rule::suggestion`]).
    pub suggestion: String,
}

impl Violation {
    pub fn new(rule: Rule, mut ranks: Vec<usize>, t_s: f64, message: String) -> Self {
        ranks.sort_unstable();
        ranks.dedup();
        let suggestion = rule.suggestion().to_string();
        Self {
            rule,
            ranks,
            t_s,
            message,
            suggestion,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] t={:.6e}s ranks={:?}: {} (fix: {})",
            self.rule.id(),
            self.t_s,
            self.ranks,
            self.message,
            self.suggestion
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_unique() {
        let rules = [
            Rule::Deadlock,
            Rule::MessageLeak,
            Rule::CollectiveMismatch,
            Rule::CollectiveTagOverflow,
            Rule::MonitorDesignation,
            Rule::MonitorMissingStart,
            Rule::MonitorBarrierBeforeEnd,
            Rule::MonitorWindowStraddle,
            Rule::ClockRegression,
            Rule::RecvBeforeArrival,
        ];
        let ids: Vec<&str> = rules.iter().map(|r| r.id()).collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len(), "duplicate rule ids: {ids:?}");
        assert!(ids.contains(&"DL001") && ids.contains(&"MON003"));
    }

    #[test]
    fn display_names_rule_ranks_and_fix() {
        let v = Violation::new(
            Rule::MessageLeak,
            vec![3, 1, 3],
            0.5,
            "rank 1 left a message for rank 3".into(),
        );
        assert_eq!(v.ranks, vec![1, 3], "sorted and deduplicated");
        let s = v.to_string();
        assert!(s.contains("[MSG001]"), "{s}");
        assert!(s.contains("rank 1 left a message"), "{s}");
        assert!(s.contains("fix:"), "{s}");
    }

    #[test]
    fn violations_round_trip_through_serde() {
        let v = Violation::new(
            Rule::Deadlock,
            vec![0, 1],
            1.25,
            "cycle: 0 -> 1 -> 0".into(),
        );
        let json = serde_json::to_string(&v).unwrap();
        let back: Violation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}
