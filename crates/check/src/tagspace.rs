//! The collective tag bit-layout the runtime packs into `u64` message
//! tags, and the overflow predicates the checker (and the runtime's debug
//! assertions) enforce.
//!
//! ```text
//! bit 63       bits 62..20        bits 19..0
//! COLL_TAG     sequence number    chunk id
//! ```
//!
//! The two highest chunk ids are reserved markers (plain collectives and
//! pipelined-broadcast headers), so pipelined data chunks must stay below
//! them.

/// The tag bit that separates collective-internal messages from user tags
/// (mirrors `greenla_mpi::context::COLL_TAG`; the runtime asserts they
/// agree).
pub const COLL_TAG_BIT: u64 = 1 << 63;

/// Bits reserved for the chunk id (low field).
pub const CHUNK_BITS: u32 = 20;

/// Bits available for the per-communicator sequence number (between the
/// chunk field and the `COLL_TAG` bit).
pub const SEQ_BITS: u32 = 63 - CHUNK_BITS;

/// Largest sequence number that fits without touching the `COLL_TAG` bit.
pub const MAX_SEQ: u64 = (1 << SEQ_BITS) - 1;

/// Largest chunk id.
pub const MAX_CHUNK: u64 = (1 << CHUNK_BITS) - 1;

/// Largest number of *data* chunks a pipelined collective may use: the two
/// top chunk ids are the plain/header markers.
pub const MAX_PIPELINE_CHUNKS: u64 = (1 << CHUNK_BITS) - 2;

/// Does a sequence number fit its bit-field?
#[inline]
pub fn seq_fits(seq: u64) -> bool {
    seq <= MAX_SEQ
}

/// Does a chunk id fit its bit-field?
#[inline]
pub fn chunk_fits(chunk: u64) -> bool {
    chunk <= MAX_CHUNK
}

/// Human-readable rendering of a message tag for diagnostics: collective
/// tags are decomposed into their fields, user tags print as-is.
pub fn describe_tag(tag: u64) -> String {
    if tag & COLL_TAG_BIT != 0 {
        let seq = (tag & !COLL_TAG_BIT) >> CHUNK_BITS;
        let chunk = tag & MAX_CHUNK;
        format!("coll(seq={seq}, chunk={chunk:#x})")
    } else {
        tag.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_boundaries() {
        assert!(seq_fits(0) && seq_fits(MAX_SEQ));
        assert!(!seq_fits(MAX_SEQ + 1));
        assert!(chunk_fits(MAX_CHUNK) && !chunk_fits(MAX_CHUNK + 1));
        assert_eq!(SEQ_BITS, 43);
        // The full layout exactly fills the u64 below the COLL_TAG bit.
        assert_eq!(COLL_TAG_BIT | (MAX_SEQ << CHUNK_BITS) | MAX_CHUNK, u64::MAX);
    }

    #[test]
    fn tags_describe_themselves() {
        assert_eq!(describe_tag(42), "42");
        let tag = COLL_TAG_BIT | (7 << CHUNK_BITS) | 0xfffff;
        assert_eq!(describe_tag(tag), "coll(seq=7, chunk=0xfffff)");
    }
}
