#![forbid(unsafe_code)]
//! # greenla-check
//!
//! A MUST-style dynamic correctness checker for the simulated MPI runtime.
//! Real MPI deployments run verifiers like MUST or ISP next to the
//! application to catch deadlocks and collective mismatches; the
//! virtual-time runtime can do strictly better, because execution is
//! deterministic and every envelope and clock advance is observable. This
//! crate is the analysis layer: `greenla-mpi` calls its hooks from the
//! runtime's hot paths, and the sink turns what it sees into structured
//! diagnostics ([`Violation`]) instead of hangs or silently-wrong energy
//! numbers.
//!
//! Five rule families:
//!
//! * **Deadlock (DL001)** — a wait-for graph over blocked ranks; when every
//!   live rank is blocked and nothing has changed for
//!   [`DEADLOCK_GRACE`], the probe reports the cycle
//!   (ranks, tags, communicators) and aborts the run instead of hanging it.
//! * **Message hygiene (MSG001)** — mailbox residue at finalize: every
//!   sent-but-never-received message is named.
//! * **Collective lockstep (COLL001/COLL002)** — all members of a
//!   communicator must issue the same collective (kind, root, element
//!   count) at the same sequence position; sequence numbers and chunk ids
//!   must fit the [`tagspace`] bit-fields.
//! * **Monitor protocol (MON001–MON004)** — the Figure-2 choreography:
//!   designated (highest) rank starts the counters, a node barrier
//!   precedes `end_monitoring`, and no rank's work straddles the
//!   measurement window.
//! * **Clock causality (CLK001/CLK002)** — per-rank virtual clocks are
//!   monotone and receives complete no earlier than the message's arrival.
//!
//! Like `greenla-trace`, the sink is an *observer*: hooks never touch a
//! virtual clock, so a checked run produces bit-identical timings to an
//! unchecked one (the mpi and harness test suites assert this), and a
//! disabled sink costs one branch per hook.
//!
//! # Example
//!
//! ```
//! use greenla_check::{CheckSink, CollEvent, CollKind, Rule};
//!
//! let sink = CheckSink::enabled();
//! sink.begin_run(vec![0, 0]); // two ranks on node 0
//! let mut c0 = sink.checker(0, 0);
//! let mut c1 = sink.checker(1, 0);
//!
//! // Rank 0 broadcasts from root 0, rank 1 from root 1: a lockstep bug.
//! let site = |root| CollEvent { comm: 0, seq: 0, kind: CollKind::Bcast, root: Some(root), elems: 0 };
//! c0.enter_coll(site(0), &[0, 1], 0.0);
//! c1.enter_coll(site(1), &[0, 1], 0.0);
//!
//! let violations = sink.violations();
//! assert_eq!(violations.len(), 1);
//! assert_eq!(violations[0].rule, Rule::CollectiveMismatch);
//! assert_eq!(violations[0].rule.id(), "COLL001");
//! ```

pub mod sink;
pub mod tagspace;
pub mod violation;

pub use sink::{CheckSink, CollEvent, CollKind, RankChecker, DEADLOCK_GRACE};
pub use violation::{Rule, Violation};
