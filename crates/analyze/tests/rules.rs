//! Rule-level coverage: each fixture under `tests/fixtures/` carries a
//! known set of violations (plus clean and suppressed cases), and the
//! combined findings are pinned by a golden JSON file. Fixtures are
//! analyzed under virtual workspace paths so crate-scoped rules engage;
//! the `fixtures` directory itself is excluded from the workspace walk.
//!
//! Regenerate the golden after an intentional rule change with
//! `GREENLA_UPDATE_GOLDEN=1 cargo test -p greenla-analyze --test rules`.

use greenla_analyze::file::FileCtx;
use greenla_analyze::rules::{check_file, Finding};
use std::path::{Path, PathBuf};

/// The stable-diagnostic set the GL004 fixture is checked against.
const FIXTURE_STABLE: &[&str] = &["injected fault:", "simulated MPI run aborted"];

/// Every fixture with its virtual path and GL004 stable set.
const FIXTURES: &[(&str, &str, &[&str])] = &[
    (
        "gl000_suppress.rs",
        "crates/linalg/src/gl000_suppress.rs",
        &[],
    ),
    ("gl001_unsafe.rs", "crates/linalg/src/gl001_unsafe.rs", &[]),
    ("gl002_guard.rs", "crates/mpi/src/gl002_guard.rs", &[]),
    ("gl003_purity.rs", "crates/rapl/src/gl003_purity.rs", &[]),
    (
        "gl004_diag.rs",
        "crates/mpi/src/gl004_diag.rs",
        FIXTURE_STABLE,
    ),
    ("gl005_serde.rs", "crates/harness/src/gl005_serde.rs", &[]),
    // The GL006 fixture runs twice: inside the dispatch module (placement
    // legal, the unsafe/visibility/note obligations still bind) and
    // outside it (every kernel additionally violates placement).
    ("gl006_target_feature.rs", "crates/linalg/src/simd.rs", &[]),
    (
        "gl006_target_feature.rs",
        "crates/harness/src/gl006_target_feature.rs",
        &[],
    ),
    ("clean.rs", "crates/mpi/src/clean.rs", FIXTURE_STABLE),
];

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn analyze_fixture(file: &str, as_path: &str, stable: &[&str]) -> Vec<Finding> {
    let src = std::fs::read_to_string(fixture_dir().join(file))
        .unwrap_or_else(|e| panic!("read fixture {file}: {e}"));
    let stable: Vec<String> = stable.iter().map(|s| s.to_string()).collect();
    check_file(&FileCtx::new(as_path, &src), &stable)
}

/// `(rule, line, suppressed)` triples, the shape assertions care about.
fn shape(findings: &[Finding]) -> Vec<(String, u32, bool)> {
    findings
        .iter()
        .map(|f| (f.rule.clone(), f.line, f.suppressed))
        .collect()
}

#[test]
fn gl000_flags_malformed_suppressions() {
    let f = analyze_fixture(
        "gl000_suppress.rs",
        "crates/linalg/src/gl000_suppress.rs",
        &[],
    );
    assert_eq!(
        shape(&f),
        vec![("GL000".into(), 3, false), ("GL000".into(), 6, false)]
    );
    assert!(f[0].message.contains("GL999"), "{}", f[0].message);
    assert!(f[1].message.contains("no reason"), "{}", f[1].message);
}

#[test]
fn gl001_flags_undocumented_unsafe_and_honors_safety_comments() {
    let f = analyze_fixture("gl001_unsafe.rs", "crates/linalg/src/gl001_unsafe.rs", &[]);
    assert_eq!(
        shape(&f),
        vec![
            ("GL001".into(), 5, false),  // unsafe block, no SAFETY
            ("GL001".into(), 8, false),  // unsafe fn, no # Safety section
            ("GL001".into(), 13, false), // unsafe impl
            ("GL001".into(), 31, true),  // suppressed block
        ]
    );
    assert_eq!(
        f[3].reason.as_deref(),
        Some("fixture exercises the suppression path")
    );
}

#[test]
fn gl002_flags_guards_live_across_yields() {
    let f = analyze_fixture("gl002_guard.rs", "crates/mpi/src/gl002_guard.rs", &[]);
    assert_eq!(
        shape(&f),
        vec![
            ("GL002".into(), 7, false),  // held across block_current
            ("GL002".into(), 24, false), // revived guard across pump_mailbox
            ("GL002".into(), 38, true),  // suppressed poison-under-guard
        ]
    );
    assert!(f[0].message.contains("`st`"), "{}", f[0].message);
    // `good_drop` and `good_scope` (drop before yield, scope exit) stay clean.
    assert!(!f.iter().any(|x| (8..=18).contains(&x.line)));
    assert!(!f.iter().any(|x| (27..=33).contains(&x.line)));
}

#[test]
fn gl003_flags_wall_clock_reads_outside_tests() {
    let f = analyze_fixture("gl003_purity.rs", "crates/rapl/src/gl003_purity.rs", &[]);
    assert_eq!(
        shape(&f),
        vec![
            ("GL003".into(), 7, false),  // Instant::now
            ("GL003".into(), 11, false), // thread::sleep
            ("GL003".into(), 15, false), // thread_rng
            ("GL003".into(), 19, false), // SystemTime in a signature
            ("GL003".into(), 20, false), // SystemTime::now
            ("GL003".into(), 25, true),  // suppressed Instant::now
        ]
    );
    // The #[cfg(test)] module's wall-clock read (line 32) is exempt.
    assert!(!f.iter().any(|x| x.line > 27));
}

#[test]
fn gl004_flags_unstable_abort_diagnostics() {
    let f = analyze_fixture(
        "gl004_diag.rs",
        "crates/mpi/src/gl004_diag.rs",
        FIXTURE_STABLE,
    );
    assert_eq!(
        shape(&f),
        vec![
            ("GL004".into(), 6, false), // "run aborted: counter wedged"
            ("GL004".into(), 19, true), // suppressed legacy message
        ]
    );
    // Stable-prefixed and format!-routed literals (lines 10, 14) pass;
    // the #[cfg(test)] literal (line 25) is exempt.
    assert!(!f.iter().any(|x| [10, 14, 25].contains(&x.line)));
}

#[test]
fn gl005_flags_baseline_growth_without_serde_default() {
    let f = analyze_fixture("gl005_serde.rs", "crates/harness/src/gl005_serde.rs", &[]);
    assert_eq!(
        shape(&f),
        vec![
            ("GL005".into(), 13, false), // RunConfig.check, no default
            ("GL005".into(), 32, true),  // suppressed BenchSuite.schema_rev
        ]
    );
    assert!(f[0].message.contains("`check`"), "{}", f[0].message);
    // faults (field serde(default)), BenchEntry.spread (container-level
    // default), NotPersisted, and the unit FaultPlan all stay clean.
}

#[test]
fn gl006_enforces_the_dispatch_contract() {
    // Inside the dispatch module: placement is legal, so only the
    // unsafe / visibility / safety-note obligations fire.
    let f = analyze_fixture("gl006_target_feature.rs", "crates/linalg/src/simd.rs", &[]);
    assert_eq!(
        shape(&f),
        vec![
            ("GL001".into(), 19, false), // unsafe fn without SAFETY (GL001 overlaps)
            ("GL006".into(), 10, false), // safe #[target_feature] fn
            ("GL006".into(), 10, false), // …and it has no safety note
            ("GL006".into(), 15, false), // pub kernel
            ("GL006".into(), 19, false), // no SAFETY/dispatch note
            ("GL006".into(), 31, true),  // suppressed safe kernel
        ]
    );
    assert!(f[1].message.contains("not `unsafe`"), "{}", f[1].message);
    assert!(f[3].message.contains("`pub`"), "{}", f[3].message);
    // `good_kernel` (line 26) is clean inside the dispatch module.
    assert!(!f.iter().any(|x| x.line == 26));

    // Outside the dispatch module: every kernel also violates placement —
    // including the otherwise-compliant one.
    let f = analyze_fixture(
        "gl006_target_feature.rs",
        "crates/harness/src/gl006_target_feature.rs",
        &[],
    );
    assert!(f
        .iter()
        .any(|x| x.rule == "GL006" && x.line == 26 && x.message.contains("outside")));
    assert_eq!(
        f.iter().filter(|x| x.message.contains("outside")).count(),
        5
    );
}

#[test]
fn clean_fixture_has_zero_findings() {
    let f = analyze_fixture("clean.rs", "crates/mpi/src/clean.rs", FIXTURE_STABLE);
    assert!(f.is_empty(), "clean fixture produced {f:?}");
}

/// The combined findings of every fixture, pinned by a committed golden
/// file so any rule-behavior drift shows up as a reviewable diff.
#[test]
fn fixture_findings_match_the_golden_json() {
    let mut all = Vec::new();
    for (file, as_path, stable) in FIXTURES {
        all.extend(analyze_fixture(file, as_path, stable));
    }
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/findings.json");
    if std::env::var_os("GREENLA_UPDATE_GOLDEN").is_some() {
        let text = serde_json::to_string_pretty(&all).expect("serialize findings");
        std::fs::write(&golden_path, text + "\n").expect("write golden");
        return;
    }
    let text = std::fs::read_to_string(&golden_path)
        .expect("golden file missing; run with GREENLA_UPDATE_GOLDEN=1 to create it");
    let golden: Vec<Finding> = serde_json::from_str(&text).expect("parse golden");
    assert_eq!(
        all, golden,
        "fixture findings drifted from tests/golden/findings.json; if the \
         rule change is intentional, regenerate with GREENLA_UPDATE_GOLDEN=1"
    );
}

/// Acceptance criterion: the `greenla-lint` binary itself exits nonzero
/// on each violation fixture and zero on the clean one.
#[test]
fn lint_binary_exit_codes_track_fixture_verdicts() {
    let bin = env!("CARGO_BIN_EXE_greenla-lint");
    for (file, as_path, stable) in FIXTURES {
        let mut cmd = std::process::Command::new(bin);
        cmd.arg("--file")
            .arg(fixture_dir().join(file))
            .arg("--as")
            .arg(as_path)
            .arg("--quiet");
        if !stable.is_empty() {
            cmd.arg("--stable").arg(stable.join(","));
        }
        let status = cmd.status().expect("run greenla-lint");
        let expect_clean = *file == "clean.rs";
        assert_eq!(
            status.code(),
            Some(if expect_clean { 0 } else { 1 }),
            "unexpected exit for fixture {file}"
        );
    }
}

/// `--json` emits the same findings the library reports.
#[test]
fn lint_binary_json_output_round_trips() {
    let bin = env!("CARGO_BIN_EXE_greenla-lint");
    let out = std::process::Command::new(bin)
        .arg("--file")
        .arg(fixture_dir().join("gl001_unsafe.rs"))
        .arg("--as")
        .arg("crates/linalg/src/gl001_unsafe.rs")
        .arg("--json")
        .output()
        .expect("run greenla-lint --json");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf-8 --json output");
    let parsed: Vec<Finding> = serde_json::from_str(&stdout).expect("parse --json output");
    assert_eq!(
        parsed,
        analyze_fixture("gl001_unsafe.rs", "crates/linalg/src/gl001_unsafe.rs", &[])
    );
}
