//! The self-application smoke test: the workspace this crate ships in
//! must analyze clean — zero unsuppressed findings — which is exactly
//! what the CI `analyze` job enforces via the binary's exit code.

use greenla_analyze::{analyze_workspace, find_workspace_root, render_human};
use std::path::Path;

#[test]
fn the_workspace_itself_has_zero_unsuppressed_findings() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/analyze");
    let findings = analyze_workspace(&root).expect("analyze workspace");
    let unsuppressed: Vec<_> = findings.iter().filter(|f| !f.suppressed).collect();
    assert!(
        unsuppressed.is_empty(),
        "the workspace must lint clean; fix or `greenla-allow` these:\n{}",
        render_human(&findings)
    );
    // Suppressions that do exist must each carry a recorded reason
    // (GL000 already enforces non-empty at parse time; this pins the
    // JSON artifact shape).
    for f in findings.iter().filter(|f| f.suppressed) {
        assert!(
            f.reason.as_deref().is_some_and(|r| !r.trim().is_empty()),
            "suppressed finding without a reason: {f:?}"
        );
    }
}
