//! Clean fixture: every rule satisfied. Analyzed as
//! `crates/mpi/src/clean.rs` so all crate-scoped rules are in scope.

pub fn tidy(reg: &Registry, ctx: &Ctx) {
    let st = reg.state.lock();
    drop(st);
    block_current(ctx);
}

pub fn diag(rank: usize) -> String {
    format!("simulated MPI run aborted: rank {rank}")
}
