//! GL006 fixture: `#[target_feature]` kernels and the dispatch contract.
//! Analyzed twice: as `crates/linalg/src/simd.rs` (the dispatch module —
//! placement is legal, the other obligations still bind) and as
//! `crates/harness/src/gl006_target_feature.rs` (where every kernel is
//! additionally outside the dispatch module).

// A safe signature: flagged — a plain call could execute AVX2
// instructions on a host that lacks them. No safety note either.
#[target_feature(enable = "avx2")]
fn bad_safe_kernel() {}

/// # Safety
/// Caller must have verified `avx2` via `is_x86_feature_detected!`.
#[target_feature(enable = "avx2")]
pub unsafe fn bad_pub_kernel() {}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn bad_undocumented_kernel() {}

/// # Safety
/// Dispatch contract: only the feature-detecting dispatcher reaches this
/// symbol, after `is_x86_feature_detected!` confirmed `avx2`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn good_kernel() {}

// SAFETY: handed out by the dispatch table only after feature detection.
// greenla-allow: GL006 fixture exercises the suppression path
#[target_feature(enable = "avx2")]
fn suppressed_safe_kernel() {}
