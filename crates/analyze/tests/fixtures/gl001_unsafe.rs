//! GL001 fixture: unsafe sites with and without justification.
//! Analyzed as `crates/linalg/src/gl001_unsafe.rs` (GL001 runs everywhere).

pub fn bad_block(p: *const u8) -> u8 {
    unsafe { *p }
}

pub unsafe fn bad_fn(p: *const u8) -> u8 {
    // SAFETY: the inner read restates the caller's contract.
    unsafe { *p }
}

unsafe impl Send for Wrapper {}

pub fn good_block(p: *const u8) -> u8 {
    // SAFETY: the caller proved `p` valid for reads.
    unsafe { *p }
}

/// Reads one byte through `p`.
///
/// # Safety
/// `p` must be valid for reads.
pub unsafe fn good_fn(p: *const u8) -> u8 {
    // SAFETY: exactly the documented contract.
    unsafe { *p }
}

pub fn suppressed_block(p: *const u8) -> u8 {
    // greenla-allow: GL001 fixture exercises the suppression path
    unsafe { *p }
}

pub struct Wrapper(*mut u8);
