//! GL004 fixture: abort diagnostics versus the stable set. Analyzed as
//! `crates/mpi/src/gl004_diag.rs` with a two-entry stable set:
//! `["injected fault:", "simulated MPI run aborted"]`.

pub fn bad_abort() -> ! {
    panic!("run aborted: counter wedged")
}

pub fn good_abort(rank: usize) -> ! {
    panic!("simulated MPI run aborted: rank {rank} gone")
}

pub fn routed(kind: &str) -> String {
    format!("injected fault: {kind}")
}

pub fn suppressed_abort() -> ! {
    // greenla-allow: GL004 fixture exercises the suppression path
    panic!("run aborted: legacy probe")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_literals_are_exempt() {
        assert!(!"aborted in a test".is_empty());
    }
}
