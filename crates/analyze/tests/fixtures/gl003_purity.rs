//! GL003 fixture: wall-clock and OS-randomness reads in a sim crate.
//! Analyzed as `crates/rapl/src/gl003_purity.rs` (rapl is a sim crate).

use std::time::Instant;

pub fn bad_instant() -> Instant {
    Instant::now()
}

pub fn bad_sleep(d: std::time::Duration) {
    std::thread::sleep(d);
}

pub fn bad_rng() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}

pub fn bad_systemtime() -> SystemTime {
    SystemTime::now()
}

pub fn allowed_probe() -> Instant {
    // greenla-allow: GL003 fixture exercises the suppression path
    Instant::now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_reads_are_fine_in_tests() {
        let _ = std::time::Instant::now();
    }
}
