//! GL005 fixture: persisted-struct fields beyond the v1 baseline.
//! Analyzed as `crates/harness/src/gl005_serde.rs`.

#[derive(Serialize, Deserialize)]
pub struct RunConfig {
    pub n: usize,
    pub ranks: usize,
    pub layout: LoadLayout,
    pub solver: SolverChoice,
    pub system: SystemKind,
    pub cores_per_socket: usize,
    pub seed: u64,
    pub check: bool,
    #[serde(default)]
    pub faults: Option<FaultPlan>,
}

#[derive(Serialize, Deserialize)]
#[serde(default)]
pub struct BenchEntry {
    pub id: String,
    pub reps: u32,
    pub median_wall_s: f64,
    pub spread: f64,
}

#[derive(Serialize, Deserialize)]
pub struct BenchSuite {
    pub suite: String,
    pub entries: Vec<BenchEntry>,
    // greenla-allow: GL005 fixture exercises the suppression path
    pub schema_rev: u32,
}

#[derive(Serialize, Deserialize)]
pub struct NotPersisted {
    pub anything: u64,
}

pub struct FaultPlan;
