//! GL002 fixture: lock guards across fiber yield points.
//! Analyzed as `crates/mpi/src/gl002_guard.rs` so the rule is in scope.

fn bad_hold(reg: &Registry, ctx: &Ctx) {
    let st = reg.state.lock();
    if st.waiting {
        block_current(ctx);
    }
}

fn good_drop(reg: &Registry, ctx: &Ctx) {
    let st = reg.state.lock();
    let ready = st.ready;
    drop(st);
    if !ready {
        block_current(ctx);
    }
}

fn bad_revive(reg: &Registry, ctx: &Ctx) {
    let mut st = reg.state.lock();
    drop(st);
    st = reg.state.lock();
    pump_mailbox(ctx);
}

fn good_scope(reg: &Registry, ctx: &Ctx) {
    {
        let st = reg.state.lock();
        st.note();
    }
    block_current(ctx);
}

fn suppressed_hold(reg: &Registry, ctx: &Ctx) {
    let st = reg.state.lock();
    // greenla-allow: GL002 fixture exercises the suppression path
    poison(&st);
}
