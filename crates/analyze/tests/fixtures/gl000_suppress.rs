//! GL000 fixture: malformed suppression comments.

// greenla-allow: GL999 no such rule
pub fn unknown_code() {}

pub fn missing_reason() {} // greenla-allow: GL003

pub fn fine() {}
