//! Per-file analysis context: the token stream plus the derived facts
//! every rule needs — which lines hold code, which tokens live inside
//! `#[cfg(test)]` modules, where attributes span, and the parsed
//! `// greenla-allow:` suppressions.

use crate::lexer::{lex, Tok, TokKind};
use std::collections::{BTreeMap, HashSet};

/// The marker a suppression comment must carry:
/// `// greenla-allow: GLxxx <reason>`.
pub const ALLOW_MARKER: &str = "greenla-allow:";

/// One parsed suppression comment.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// Line the comment sits on.
    pub line: u32,
    /// Rule code it names (`GL003`), possibly malformed.
    pub code: String,
    /// Free-text justification after the code (may be empty — GL000).
    pub reason: String,
    /// The code line this suppression covers: its own line for a trailing
    /// comment, the next code line for a whole-line comment.
    pub covers: u32,
}

/// Everything rules need to know about one source file.
pub struct FileCtx {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    pub toks: Vec<Tok>,
    /// Lines containing at least one non-comment, non-attribute token.
    pub code_lines: HashSet<u32>,
    /// `attr_mask[i]` — token `i` is part of a `#[…]` / `#![…]` attribute.
    pub attr_mask: Vec<bool>,
    /// `test_mask[i]` — token `i` is inside a `#[cfg(test)] mod { … }`.
    pub test_mask: Vec<bool>,
    /// Parsed suppressions, in file order.
    pub suppressions: Vec<Suppression>,
    /// Comments grouped by starting line (for SAFETY lookups).
    pub comments_by_line: BTreeMap<u32, Vec<(TokKind, String)>>,
}

impl FileCtx {
    pub fn new(rel_path: &str, source: &str) -> Self {
        let toks = lex(source);
        let attr_mask = attr_mask(&toks);
        let test_mask = test_mask(&toks, &attr_mask);
        let mut code_lines = HashSet::new();
        let mut comments_by_line: BTreeMap<u32, Vec<(TokKind, String)>> = BTreeMap::new();
        for (i, t) in toks.iter().enumerate() {
            if t.is_comment() {
                comments_by_line
                    .entry(t.line)
                    .or_default()
                    .push((t.kind, t.text.clone()));
            } else if !attr_mask[i] {
                code_lines.insert(t.line);
            }
        }
        let suppressions = parse_suppressions(&toks, &code_lines);
        FileCtx {
            rel_path: rel_path.replace('\\', "/"),
            toks,
            code_lines,
            attr_mask,
            test_mask,
            suppressions,
            comments_by_line,
        }
    }

    /// Index of the next non-comment token at or after `i`.
    pub fn next_sig(&self, mut i: usize) -> Option<usize> {
        while i < self.toks.len() {
            if !self.toks[i].is_comment() {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Index of the previous non-comment token strictly before `i`.
    pub fn prev_sig(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| !self.toks[j].is_comment())
    }

    /// Does the contiguous annotation run (comments, attributes, blank
    /// lines) directly above `line` — or a comment on `line` itself —
    /// contain `needle`? `doc_only` restricts the search to doc comments.
    pub fn annotation_above_contains(&self, line: u32, needle: &str, doc_only: bool) -> bool {
        let hit = |kinds: &[(TokKind, String)]| {
            kinds
                .iter()
                .any(|(k, text)| (!doc_only || *k == TokKind::DocComment) && text.contains(needle))
        };
        if let Some(c) = self.comments_by_line.get(&line) {
            if hit(c) {
                return true;
            }
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            if self.code_lines.contains(&l) {
                return false;
            }
            if let Some(c) = self.comments_by_line.get(&l) {
                if hit(c) {
                    return true;
                }
            }
            if l == 1 {
                return false;
            }
            l -= 1;
        }
        false
    }

    /// The suppression covering `(code, line)`, if any.
    pub fn suppression_for(&self, code: &str, line: u32) -> Option<&Suppression> {
        self.suppressions
            .iter()
            .find(|s| s.code == code && s.covers == line)
    }
}

/// Mark tokens belonging to `#[…]` / `#![…]` attributes.
fn attr_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct && toks[i].text == "#" {
            let mut j = i + 1;
            if j < toks.len() && toks[j].text == "!" {
                j += 1;
            }
            if j < toks.len() && toks[j].text == "[" {
                let mut depth = 0usize;
                let start = i;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                for m in mask.iter_mut().take(j.min(toks.len() - 1) + 1).skip(start) {
                    *m = true;
                }
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Mark tokens inside `#[cfg(test)] mod … { … }` bodies (including
/// `#[cfg(all(test, …))]`). Rules that only govern shipping code — the
/// purity and diagnostics lints — skip masked tokens.
fn test_mask(toks: &[Tok], attr_mask: &[bool]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        // Find an attribute opener `#[`.
        let is_attr_start = toks[i].text == "#" && attr_mask[i] && (i == 0 || !attr_mask[i - 1]);
        if !is_attr_start {
            i += 1;
            continue;
        }
        // Collect the attribute's idents.
        let mut j = i;
        let mut has_cfg = false;
        let mut has_test = false;
        while j < toks.len() && attr_mask[j] {
            if toks[j].kind == TokKind::Ident {
                has_cfg |= toks[j].text == "cfg";
                has_test |= toks[j].text == "test";
            }
            j += 1;
        }
        if !(has_cfg && has_test) {
            i = j;
            continue;
        }
        // Skip further attributes/comments, then expect `mod name {`.
        let mut k = j;
        while k < toks.len() && (toks[k].is_comment() || attr_mask[k]) {
            k += 1;
        }
        if k < toks.len() && toks[k].kind == TokKind::Ident && toks[k].text == "mod" {
            // mod <ident> {
            let mut b = k + 1;
            while b < toks.len() && toks[b].text != "{" && toks[b].text != ";" {
                b += 1;
            }
            if b < toks.len() && toks[b].text == "{" {
                let mut depth = 0usize;
                let mut e = b;
                while e < toks.len() {
                    match toks[e].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    e += 1;
                }
                for m in mask.iter_mut().take(e.min(toks.len() - 1) + 1).skip(b) {
                    *m = true;
                }
                i = e + 1;
                continue;
            }
        }
        i = j;
    }
    mask
}

/// Parse `// greenla-allow: GLxxx <reason>` comments into [`Suppression`]s.
fn parse_suppressions(toks: &[Tok], code_lines: &HashSet<u32>) -> Vec<Suppression> {
    let max_line = toks.iter().map(|t| t.line).max().unwrap_or(0);
    let mut out = Vec::new();
    for t in toks {
        if t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment {
            continue;
        }
        let Some(pos) = t.text.find(ALLOW_MARKER) else {
            continue;
        };
        let rest = &t.text[pos + ALLOW_MARKER.len()..];
        let mut words = rest.split_whitespace();
        let code = words.next().unwrap_or("").to_string();
        let reason = words.collect::<Vec<_>>().join(" ");
        // Trailing comment covers its own line; whole-line comment covers
        // the next code line.
        let covers = if code_lines.contains(&t.line) {
            t.line
        } else {
            let mut l = t.line + 1;
            while l <= max_line && !code_lines.contains(&l) {
                l += 1;
            }
            l
        };
        out.push(Suppression {
            line: t.line,
            code,
            reason,
            covers,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mask_covers_cfg_test_modules() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x(); }\n}\nfn c() {}\n";
        let ctx = FileCtx::new("crates/x/src/lib.rs", src);
        let masked: Vec<&str> = ctx
            .toks
            .iter()
            .zip(&ctx.test_mask)
            .filter(|(_, &m)| m)
            .map(|(t, _)| t.text.as_str())
            .collect();
        assert!(masked.contains(&"b") && masked.contains(&"x"));
        assert!(!masked.contains(&"a") && !masked.contains(&"c"));
    }

    #[test]
    fn cfg_all_test_is_also_masked() {
        let src = "#[cfg(all(test, target_arch = \"x86_64\"))]\nmod tests { fn b() {} }\n";
        let ctx = FileCtx::new("crates/x/src/lib.rs", src);
        assert!(ctx
            .toks
            .iter()
            .zip(&ctx.test_mask)
            .any(|(t, &m)| m && t.text == "b"));
    }

    #[test]
    fn suppressions_cover_trailing_and_next_line() {
        let src = "\
fn f() { g(); } // greenla-allow: GL003 trailing case
// greenla-allow: GL001 whole-line case
fn h() {}
";
        let ctx = FileCtx::new("crates/x/src/lib.rs", src);
        assert_eq!(ctx.suppressions.len(), 2);
        assert_eq!(ctx.suppressions[0].covers, 1);
        assert_eq!(ctx.suppressions[1].covers, 3);
        assert!(ctx.suppression_for("GL003", 1).is_some());
        assert!(ctx.suppression_for("GL001", 3).is_some());
        assert!(ctx.suppression_for("GL001", 1).is_none());
    }

    #[test]
    fn annotation_run_lookup_sees_stacked_comments_and_attrs() {
        let src = "\
// SAFETY: justified three lines up
// and continued here
#[inline]
unsafe fn f() {}
";
        let ctx = FileCtx::new("crates/x/src/lib.rs", src);
        assert!(ctx.annotation_above_contains(4, "SAFETY:", false));
        assert!(!ctx.annotation_above_contains(4, "SAFETY:", true));
    }
}
