//! A hand-rolled Rust lexer, just deep enough for linting.
//!
//! The scanner understands everything that can *hide* tokens from a naive
//! substring grep — nested block comments, raw strings (`r#"…"#`, as used
//! by the fiber `global_asm!`), byte/char literals vs. lifetimes — and
//! keeps comments in the stream so rules can look for `// SAFETY:`
//! justifications and `// greenla-allow:` suppressions. It does **not**
//! build an AST: every rule works on the flat token stream plus brace
//! depth, which is the sweet spot between a grep (too blind) and a full
//! parser (a new external dependency, which the vendored offline build
//! forbids).

/// What a token is. Keywords are ordinary [`TokKind::Ident`]s; rules match
/// on text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `lock`, `fn`, …).
    Ident,
    /// Lifetime such as `'scope` (distinguished from char literals).
    Lifetime,
    /// A single punctuation character (`.`, `{`, `#`, one of `::`'s
    /// colons, …). Rules match multi-char operators as sequences.
    Punct,
    /// String literal (plain, raw, byte, or byte-raw). `text` holds the
    /// *contents* with escapes left verbatim, quotes stripped.
    Str,
    /// Character or byte literal, quotes included.
    CharLit,
    /// Numeric literal.
    Num,
    /// `// …` comment, text without the slashes.
    LineComment,
    /// `/* … */` comment (possibly nested), delimiters stripped.
    BlockComment,
    /// `///`, `//!`, `/** */`, `/*! */` documentation comment.
    DocComment,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokKind::LineComment | TokKind::BlockComment | TokKind::DocComment
        )
    }
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Scanner<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek(0);
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn take_while(&mut self, f: impl Fn(u8) -> bool) -> usize {
        let start = self.pos;
        while self.pos < self.src.len() && f(self.peek(0)) {
            self.bump();
        }
        self.pos - start
    }

    fn slice(&self, from: usize) -> String {
        String::from_utf8_lossy(&self.src[from..self.pos]).into_owned()
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_cont(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Lex `src` into a token stream. The lexer never fails: unterminated
/// literals run to end-of-file, and unknown bytes become [`TokKind::Punct`]
/// tokens — a linter must keep going where a compiler would stop.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut s = Scanner {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut toks = Vec::new();
    while s.pos < s.src.len() {
        let line = s.line;
        let c = s.peek(0);
        // Whitespace.
        if c.is_ascii_whitespace() {
            s.bump();
            continue;
        }
        // Comments.
        if c == b'/' && s.peek(1) == b'/' {
            let start = s.pos;
            s.take_while(|c| c != b'\n');
            let text = s.slice(start);
            let kind = if text.starts_with("///") || text.starts_with("//!") {
                TokKind::DocComment
            } else {
                TokKind::LineComment
            };
            let body = text.trim_start_matches('/').trim_start_matches('!');
            toks.push(Tok {
                kind,
                text: body.to_string(),
                line,
            });
            continue;
        }
        if c == b'/' && s.peek(1) == b'*' {
            let start = s.pos;
            let doc = s.peek(2) == b'*' || s.peek(2) == b'!';
            s.bump();
            s.bump();
            let mut depth = 1usize;
            while s.pos < s.src.len() && depth > 0 {
                if s.peek(0) == b'/' && s.peek(1) == b'*' {
                    depth += 1;
                    s.bump();
                    s.bump();
                } else if s.peek(0) == b'*' && s.peek(1) == b'/' {
                    depth -= 1;
                    s.bump();
                    s.bump();
                } else {
                    s.bump();
                }
            }
            let text = s.slice(start);
            let body = text
                .trim_start_matches('/')
                .trim_start_matches('*')
                .trim_start_matches('!')
                .trim_end_matches('/')
                .trim_end_matches('*');
            toks.push(Tok {
                kind: if doc {
                    TokKind::DocComment
                } else {
                    TokKind::BlockComment
                },
                text: body.to_string(),
                line,
            });
            continue;
        }
        // Raw strings and byte strings: r"…", r#"…"#, br"…", b"…".
        if (c == b'r' || c == b'b') && raw_or_byte_string(&mut s, &mut toks, line) {
            continue;
        }
        // Identifiers and keywords.
        if is_ident_start(c) {
            let start = s.pos;
            s.take_while(is_ident_cont);
            toks.push(Tok {
                kind: TokKind::Ident,
                text: s.slice(start),
                line,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = s.pos;
            s.take_while(|c| c.is_ascii_alphanumeric() || c == b'_');
            // Accept a fractional part, but leave `0..5` ranges alone.
            if s.peek(0) == b'.' && s.peek(1).is_ascii_digit() {
                s.bump();
                s.take_while(|c| c.is_ascii_alphanumeric() || c == b'_');
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: s.slice(start),
                line,
            });
            continue;
        }
        // Plain string literal.
        if c == b'"' {
            s.bump();
            let start = s.pos;
            loop {
                match s.peek(0) {
                    0 => break,
                    b'\\' => {
                        s.bump();
                        s.bump();
                    }
                    b'"' => break,
                    _ => {
                        s.bump();
                    }
                }
            }
            let text = s.slice(start);
            s.bump(); // closing quote
            toks.push(Tok {
                kind: TokKind::Str,
                text,
                line,
            });
            continue;
        }
        // Char literal vs. lifetime.
        if c == b'\'' {
            // Lifetime: 'ident not followed by a closing quote.
            if is_ident_start(s.peek(1)) {
                let mut j = 2;
                while is_ident_cont(s.peek(j)) {
                    j += 1;
                }
                if s.peek(j) != b'\'' {
                    let start = s.pos;
                    s.bump();
                    s.take_while(is_ident_cont);
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: s.slice(start),
                        line,
                    });
                    continue;
                }
            }
            // Char literal: '<char or escape>'.
            let start = s.pos;
            s.bump();
            if s.peek(0) == b'\\' {
                s.bump();
            }
            s.bump();
            if s.peek(0) == b'\'' {
                s.bump();
            }
            toks.push(Tok {
                kind: TokKind::CharLit,
                text: s.slice(start),
                line,
            });
            continue;
        }
        // Everything else: one punct char per token.
        s.bump();
        toks.push(Tok {
            kind: TokKind::Punct,
            text: (c as char).to_string(),
            line,
        });
    }
    toks
}

/// Try to lex a raw/byte string starting at `r`/`b`; returns whether one
/// was consumed. Handles `r"…"`, `r#"…"#` (any number of `#`s), `b"…"`,
/// `br#"…"#`, and byte chars `b'…'`.
fn raw_or_byte_string(s: &mut Scanner<'_>, toks: &mut Vec<Tok>, line: u32) -> bool {
    let mut j = 1;
    if s.peek(0) == b'b' && s.peek(1) == b'r' {
        j = 2;
    }
    if s.peek(0) == b'b' && s.peek(1) == b'\'' {
        // Byte char literal b'x'.
        let start = s.pos;
        s.bump();
        s.bump();
        if s.peek(0) == b'\\' {
            s.bump();
        }
        s.bump();
        if s.peek(0) == b'\'' {
            s.bump();
        }
        toks.push(Tok {
            kind: TokKind::CharLit,
            text: s.slice(start),
            line,
        });
        return true;
    }
    let raw = s.peek(0) == b'r' || (s.peek(0) == b'b' && s.peek(1) == b'r');
    if raw {
        // Count the `#`s after r/br; must then see a quote.
        let mut hashes = 0;
        while s.peek(j + hashes) == b'#' {
            hashes += 1;
        }
        if s.peek(j + hashes) != b'"' {
            return false;
        }
        for _ in 0..j + hashes + 1 {
            s.bump();
        }
        let start = s.pos;
        let closer: Vec<u8> = std::iter::once(b'"')
            .chain(std::iter::repeat_n(b'#', hashes))
            .collect();
        loop {
            if s.pos >= s.src.len() {
                break;
            }
            if s.peek(0) == b'"' && (0..hashes).all(|k| s.peek(1 + k) == b'#') {
                break;
            }
            s.bump();
        }
        let text = s.slice(start);
        for _ in 0..closer.len() {
            s.bump();
        }
        toks.push(Tok {
            kind: TokKind::Str,
            text,
            line,
        });
        return true;
    }
    if s.peek(0) == b'b' && s.peek(1) == b'"' {
        s.bump(); // b
        s.bump(); // "
        let start = s.pos;
        loop {
            match s.peek(0) {
                0 => break,
                b'\\' => {
                    s.bump();
                    s.bump();
                }
                b'"' => break,
                _ => {
                    s.bump();
                }
            }
        }
        let text = s.slice(start);
        s.bump();
        toks.push(Tok {
            kind: TokKind::Str,
            text,
            line,
        });
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_keywords_and_puncts() {
        let toks = kinds("unsafe fn f() { x.lock(); }");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["unsafe", "fn", "f", "x", "lock"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'scope>(x: &'scope str) { let c = 'a'; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Lifetime && t == "'scope"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::CharLit && t == "'a'"));
    }

    #[test]
    fn raw_strings_hide_their_contents_from_token_matching() {
        // The global_asm block in fiber.rs must not leak `unsafe`-looking
        // tokens (or banned idents) out of its raw string.
        let toks = kinds("global_asm!(r#\" unsafe Instant::now \"#);");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Str).count(),
            1,
            "raw string lexed as one literal"
        );
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "unsafe"));
    }

    #[test]
    fn nested_block_comments_and_doc_comments() {
        let toks = kinds("/* a /* b */ c */ /// doc\n//! inner\n// plain");
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert!(toks[0].1.contains("b"));
        assert_eq!(toks[1].0, TokKind::DocComment);
        assert_eq!(toks[2].0, TokKind::DocComment);
        assert_eq!(toks[3].0, TokKind::LineComment);
    }

    #[test]
    fn string_escapes_do_not_end_literals_early() {
        let toks = kinds(r#"let s = "a \" b";"#);
        let strs: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, [r#"a \" b"#]);
    }

    #[test]
    fn lines_are_tracked_across_multiline_tokens() {
        let toks = lex("a\n/* x\ny */\nb");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2); // comment starts on line 2
        assert_eq!(toks[2].line, 4); // b lands after the comment's newlines
    }

    #[test]
    fn numeric_range_is_three_tokens() {
        let toks = kinds("0..5");
        assert_eq!(toks.len(), 4); // 0, '.', '.', 5
        assert_eq!(toks[0].0, TokKind::Num);
        assert_eq!(toks[3].0, TokKind::Num);
    }
}
