#![forbid(unsafe_code)]
//! # greenla-analyze
//!
//! Workspace-aware static analysis for the greenla reproduction: the
//! `greenla-lint` binary walks every crate's sources with a hand-rolled
//! lexer (no external parser — the vendored offline build stays
//! dependency-free) and enforces the repo-specific contracts that dynamic
//! tests can only sample:
//!
//! * **GL001** — every `unsafe` block/fn/impl carries a `// SAFETY:`
//!   justification (functions may use a `# Safety` rustdoc section).
//! * **GL002** — no lock guard is live across a fiber yield / poison
//!   point in `crates/mpi` (the M:N engine's signature deadlock class).
//! * **GL003** — simulation crates never read wall clocks, OS sleeps, or
//!   OS randomness: virtual-time purity is what makes runs bit-identical
//!   across schedulers.
//! * **GL004** — abort diagnostics in mpi/harness stay inside the stable
//!   set the chaos battery asserts (`STABLE_DIAGNOSTICS`), in both
//!   directions: no unstable abort strings, no dead set entries.
//! * **GL005** — persisted config/schema structs only grow with
//!   `#[serde(default)]`-compatible fields, so old datasets keep parsing.
//!
//! Findings are `file:line`-addressed; `// greenla-allow: GLxxx <reason>`
//! on (or directly above) the offending line suppresses one finding and
//! records the reason. See `ARCHITECTURE.md` §11 for the full rule
//! rationale.
//!
//! ```
//! use greenla_analyze::{file::FileCtx, rules::check_file};
//! let src = "fn f() { let x = unsafe { *p }; }\n";
//! let ctx = FileCtx::new("crates/mpi/src/demo.rs", src);
//! let findings = check_file(&ctx, &[]);
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "GL001");
//! ```

pub mod file;
pub mod lexer;
pub mod rules;

use file::FileCtx;
use lexer::TokKind;
use rules::{Finding, SERDE_BASELINES};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Where the stable-diagnostic set lives; GL004 keeps it and the runtime
/// sources in sync.
pub const STABLE_DIAGNOSTICS_FILE: &str = "crates/harness/tests/chaos.rs";

/// Directories never analyzed: external stand-ins, build output, and the
/// lint fixtures (which contain violations *on purpose*).
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", "fixtures"];

/// Analyze every Rust source under `root` (a workspace checkout) and
/// return all findings, suppressed ones included, sorted by
/// `(file, line, rule)`.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    // Pass 1: lex everything once; pull the stable-diagnostic set out of
    // the chaos battery.
    let mut ctxs = Vec::with_capacity(files.len());
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        ctxs.push(FileCtx::new(
            &rel.to_string_lossy().replace('\\', "/"),
            &src,
        ));
    }
    let stable = ctxs
        .iter()
        .find(|c| c.rel_path == STABLE_DIAGNOSTICS_FILE)
        .map(parse_stable_diagnostics)
        .unwrap_or_default();

    // Pass 2: file-scoped rules.
    let mut findings = Vec::new();
    for ctx in &ctxs {
        findings.extend(rules::check_file(ctx, &stable));
    }

    // Pass 3: workspace-scoped halves of GL004/GL005.
    findings.extend(gl004_dead_entries(&ctxs, &stable));
    findings.extend(gl005_missing_structs(&ctxs));

    findings.sort_by(|a, b| {
        (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
    });
    findings.dedup();
    Ok(findings)
}

/// Find the workspace root: walk up from `start` until a `Cargo.toml`
/// containing `[workspace]` appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}

/// Extract the `STABLE_DIAGNOSTICS` entries from the chaos battery's
/// token stream: every string literal between the const's `[` and `]`.
pub fn parse_stable_diagnostics(ctx: &FileCtx) -> Vec<String> {
    let toks = &ctx.toks;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokKind::Ident && toks[i].text == "STABLE_DIAGNOSTICS" {
            // Skip the type annotation: scan to `=`, then to the
            // initializer's `[`, then collect strings to the matching `]`.
            let mut j = i + 1;
            while j < toks.len() && toks[j].text != "=" && toks[j].text != ";" {
                j += 1;
            }
            while j < toks.len() && toks[j].text != "[" && toks[j].text != ";" {
                j += 1;
            }
            if j < toks.len() && toks[j].text == "[" {
                let mut depth = 0usize;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {
                            if toks[j].kind == TokKind::Str {
                                out.push(toks[j].text.clone());
                            }
                        }
                    }
                    j += 1;
                }
            }
            break;
        }
        i += 1;
    }
    out
}

/// GL004 (workspace half): every stable-diagnostic entry must appear in
/// at least one string literal of the runtime sources (mpi, check, cg,
/// harness). A dead entry means the battery asserts a diagnostic nothing
/// can produce — usually a sign the source string drifted.
fn gl004_dead_entries(ctxs: &[FileCtx], stable: &[String]) -> Vec<Finding> {
    if stable.is_empty() {
        return Vec::new();
    }
    let chaos = ctxs.iter().find(|c| c.rel_path == STABLE_DIAGNOSTICS_FILE);
    let universe: Vec<&FileCtx> = ctxs
        .iter()
        .filter(|c| {
            (c.rel_path.starts_with("crates/mpi/src/")
                || c.rel_path.starts_with("crates/check/src/")
                || c.rel_path.starts_with("crates/cg/src/")
                || c.rel_path.starts_with("crates/harness/src/"))
                && c.rel_path != STABLE_DIAGNOSTICS_FILE
        })
        .collect();
    let mut out = Vec::new();
    for entry in stable {
        let produced = universe.iter().any(|c| {
            c.toks
                .iter()
                .any(|t| t.kind == TokKind::Str && t.text.contains(entry.as_str()))
        });
        if !produced {
            let line = chaos
                .and_then(|c| {
                    c.toks
                        .iter()
                        .find(|t| t.kind == TokKind::Str && t.text == *entry)
                        .map(|t| t.line)
                })
                .unwrap_or(0);
            out.push(Finding {
                rule: "GL004".into(),
                file: STABLE_DIAGNOSTICS_FILE.into(),
                line,
                message: format!(
                    "stable diagnostic {entry:?} is produced by no string literal in \
                     mpi/check/harness sources — dead entry or drifted source string"
                ),
                suppressed: chaos
                    .and_then(|c| c.suppression_for("GL004", line))
                    .is_some(),
                reason: chaos
                    .and_then(|c| c.suppression_for("GL004", line))
                    .map(|s| s.reason.clone()),
            });
        }
    }
    out
}

/// GL005 (workspace half): every struct in the baseline table must still
/// exist somewhere — a rename would otherwise silently disable its check.
fn gl005_missing_structs(ctxs: &[FileCtx]) -> Vec<Finding> {
    let mut seen: BTreeMap<&str, bool> = SERDE_BASELINES.iter().map(|(n, _)| (*n, false)).collect();
    for ctx in ctxs {
        let toks = &ctx.toks;
        for k in 0..toks.len().saturating_sub(1) {
            if toks[k].kind == TokKind::Ident && toks[k].text == "struct" {
                // Next significant token is the name.
                if let Some(n) = ctx.next_sig(k + 1) {
                    if let Some(v) = seen.get_mut(toks[n].text.as_str()) {
                        *v = true;
                    }
                }
            }
        }
    }
    seen.iter()
        .filter(|(_, &found)| !found)
        .map(|(name, _)| Finding {
            rule: "GL005".into(),
            file: "crates/analyze/src/rules.rs".into(),
            line: 0,
            message: format!(
                "baseline struct `{name}` no longer exists in the workspace; update \
                 SERDE_BASELINES so schema-compat checking follows the rename"
            ),
            suppressed: false,
            reason: None,
        })
        .collect()
}

/// Render findings for humans: unsuppressed first, `file:line: RULE msg`,
/// then a one-line summary.
pub fn render_human(findings: &[Finding]) -> String {
    let mut s = String::new();
    let unsuppressed: Vec<&Finding> = findings.iter().filter(|f| !f.suppressed).collect();
    for f in &unsuppressed {
        s.push_str(&format!(
            "{}:{}: {} {}\n",
            f.file, f.line, f.rule, f.message
        ));
    }
    let suppressed = findings.len() - unsuppressed.len();
    s.push_str(&format!(
        "greenla-lint: {} finding(s), {} suppressed\n",
        unsuppressed.len(),
        suppressed
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_diagnostics_parse_from_a_const_array() {
        let src = r#"
const STABLE_DIAGNOSTICS: &[&str] = &[
    "injected fault:",
    "simulated MPI run aborted",
];
"#;
        let ctx = FileCtx::new(STABLE_DIAGNOSTICS_FILE, src);
        assert_eq!(
            parse_stable_diagnostics(&ctx),
            vec!["injected fault:", "simulated MPI run aborted"]
        );
    }

    #[test]
    fn workspace_root_discovery_walks_upward() {
        let here = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates/analyze").is_dir());
    }
}
