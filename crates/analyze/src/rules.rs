//! The repo-specific lint rules.
//!
//! | Code  | Contract it guards |
//! |-------|--------------------|
//! | GL000 | suppression comments are well-formed (right code, non-empty reason) |
//! | GL001 | every `unsafe` site carries a `// SAFETY:` justification |
//! | GL002 | no lock guard is live across a fiber yield / poison point in `crates/mpi` |
//! | GL003 | simulation crates never read wall clocks, OS sleep, or OS randomness |
//! | GL004 | abort diagnostics in mpi/harness stay within the chaos battery's stable set |
//! | GL005 | new fields on persisted config/schema structs are `#[serde(default)]` |
//! | GL006 | `#[target_feature]` kernels are private `unsafe fn`s in the dispatch module, with a SAFETY/dispatch note |
//!
//! Every rule reports `file:line` findings; `// greenla-allow: GLxxx
//! <reason>` on the offending line (or the comment line directly above)
//! suppresses one finding and records the reason in the JSON output.

use crate::file::FileCtx;
use crate::lexer::TokKind;
use serde::{Deserialize, Serialize};

/// One lint finding. `suppressed` findings still appear in `--json`
/// output (with their recorded reason) but do not fail the run.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct Finding {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub message: String,
    #[serde(default = "default_false")]
    pub suppressed: bool,
    #[serde(default = "Default::default")]
    pub reason: Option<String>,
}

fn default_false() -> bool {
    false
}

/// Crates whose `src/` must stay virtual-time pure (GL003): their code
/// runs *inside* the simulation, where any wall-clock or OS-randomness
/// read breaks determinism and scheduler invariance.
pub const SIM_CRATES: &[&str] = &[
    "mpi",
    "ime",
    "scalapack",
    "cg",
    "monitor",
    "rapl",
    "model",
    "cluster",
    "faults",
];

/// Fiber yield / poison points (GL002): functions a rank can call while
/// the event engine parks its fiber, or that notify under the registry's
/// own map locks. Holding a `parking_lot` guard across any of these is
/// the M:N engine's signature deadlock.
pub const YIELD_FNS: &[&str] = &[
    "block_current",
    "pump_mailbox",
    "report_quiescent_deadlock",
    "poison",
];

/// Wall-clock / OS-randomness markers banned by GL003. Each entry is a
/// token sequence matched against consecutive significant tokens.
const PURITY_BANS: &[(&[&str], &str)] = &[
    (
        &["Instant", ":", ":", "now"],
        "wall-clock read (`Instant::now`)",
    ),
    (&["SystemTime"], "wall-clock type (`SystemTime`)"),
    (&["thread", ":", ":", "sleep"], "OS sleep (`thread::sleep`)"),
    (&["thread_rng"], "OS-seeded RNG (`thread_rng`)"),
    (&["OsRng"], "OS randomness (`OsRng`)"),
    (&["from_entropy"], "OS-seeded RNG (`from_entropy`)"),
];

/// Substrings that mark a `panic!` literal as a *run-abort diagnostic*
/// (GL004) rather than an internal assertion.
const ABORT_MARKERS: &[&str] = &[
    "injected fault",
    "peers gone",
    "aborted",
    "contract violated",
    "deadlock:",
];

/// GL005 targets: persisted config/schema structs and the fields their
/// **v1 schema** already required. Any field *not* in the baseline must
/// carry `#[serde(default…)]` so datasets written before the field
/// existed keep deserializing. Growing a struct means leaving its
/// baseline alone; renaming one means updating it here (GL005 flags the
/// drift either way).
pub const SERDE_BASELINES: &[(&str, &[&str])] = &[
    (
        "RunConfig",
        &[
            "n",
            "ranks",
            "layout",
            "solver",
            "system",
            "cores_per_socket",
            "seed",
        ],
    ),
    (
        "FunctionalGrid",
        &[
            "dims",
            "ranks",
            "layouts",
            "reps",
            "cores_per_socket",
            "base_seed",
        ],
    ),
    ("FaultPlan", &[]),
    ("BenchEntry", &["id", "reps", "median_wall_s"]),
    ("BenchSuite", &["suite", "entries"]),
    ("BenchReport", &["schema", "suites"]),
];

/// Files allowed to define `#[target_feature]` functions (GL006): the
/// runtime-dispatch modules, which hand ISA kernels out as fn pointers
/// only after `is_x86_feature_detected!` confirms the hardware. Anywhere
/// else, a feature-gated function is one refactor away from being called
/// on a machine that cannot execute it.
pub const DISPATCH_MODULES: &[&str] = &["crates/linalg/src/simd.rs"];

/// All rule codes, for suppression validation.
pub const RULE_CODES: &[&str] = &["GL001", "GL002", "GL003", "GL004", "GL005", "GL006"];

/// Which crate (under `crates/`) a workspace-relative path belongs to.
fn crate_of(rel: &str) -> Option<&str> {
    let rest = rel.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Is this path the crate's shipping source (`crates/<c>/src/…`)?
fn in_crate_src(rel: &str, krate: &str) -> bool {
    rel.starts_with(&format!("crates/{krate}/src/"))
}

fn push(ctx: &FileCtx, out: &mut Vec<Finding>, rule: &str, line: u32, message: String) {
    let supp = ctx.suppression_for(rule, line);
    out.push(Finding {
        rule: rule.to_string(),
        file: ctx.rel_path.clone(),
        line,
        message,
        suppressed: supp.is_some(),
        reason: supp.map(|s| s.reason.clone()),
    });
}

/// Run every file-scoped rule on one file. `stable` is the parsed
/// stable-diagnostic set (for GL004); pass `&[]` to skip that rule.
pub fn check_file(ctx: &FileCtx, stable: &[String]) -> Vec<Finding> {
    let mut out = Vec::new();
    gl000_suppression_hygiene(ctx, &mut out);
    gl001_unsafe_needs_safety(ctx, &mut out);
    if in_crate_src(&ctx.rel_path, "mpi") {
        gl002_guard_across_yield(ctx, &mut out);
    }
    if crate_of(&ctx.rel_path)
        .map(|c| SIM_CRATES.contains(&c) && in_crate_src(&ctx.rel_path, c))
        .unwrap_or(false)
    {
        gl003_virtual_time_purity(ctx, &mut out);
    }
    if !stable.is_empty()
        && (in_crate_src(&ctx.rel_path, "mpi")
            || in_crate_src(&ctx.rel_path, "harness")
            || in_crate_src(&ctx.rel_path, "cg"))
    {
        gl004_stable_diagnostics(ctx, stable, &mut out);
    }
    gl005_serde_defaults(ctx, &mut out);
    gl006_target_feature_dispatch(ctx, &mut out);
    out
}

/// GL000: every suppression names a real rule and gives a reason.
fn gl000_suppression_hygiene(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for s in &ctx.suppressions {
        if !RULE_CODES.contains(&s.code.as_str()) {
            out.push(Finding {
                rule: "GL000".into(),
                file: ctx.rel_path.clone(),
                line: s.line,
                message: format!(
                    "suppression names unknown rule `{}` (known: {})",
                    s.code,
                    RULE_CODES.join(", ")
                ),
                suppressed: false,
                reason: None,
            });
        } else if s.reason.trim().is_empty() {
            out.push(Finding {
                rule: "GL000".into(),
                file: ctx.rel_path.clone(),
                line: s.line,
                message: format!(
                    "suppression for {} has no reason; write `// greenla-allow: {} <why>`",
                    s.code, s.code
                ),
                suppressed: false,
                reason: None,
            });
        }
    }
}

/// GL001: `unsafe` blocks/fns/impls/traits need a `// SAFETY:` comment
/// (functions may carry a `# Safety` rustdoc section instead).
fn gl001_unsafe_needs_safety(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "unsafe" || ctx.attr_mask[i] {
            continue;
        }
        let Some(n) = ctx.next_sig(i + 1) else {
            continue;
        };
        let next = ctx.toks[n].text.as_str();
        let kind = match next {
            "{" => "block",
            "fn" => "fn",
            "impl" => "impl",
            "trait" => "trait",
            "extern" => {
                // `unsafe extern "C" fn` vs. `unsafe extern "C" { … }`.
                let mut j = n + 1;
                while j < ctx.toks.len()
                    && (ctx.toks[j].is_comment() || ctx.toks[j].kind == TokKind::Str)
                {
                    j += 1;
                }
                if ctx.toks.get(j).map(|t| t.text.as_str()) == Some("fn") {
                    "fn"
                } else {
                    "extern block"
                }
            }
            _ => continue, // e.g. `unsafe` inside a doc example we mislexed
        };
        let justified = ctx.annotation_above_contains(t.line, "SAFETY:", false)
            || (kind == "fn" && ctx.annotation_above_contains(t.line, "# Safety", true));
        if !justified {
            push(
                ctx,
                out,
                "GL001",
                t.line,
                format!(
                    "unsafe {kind} without a `// SAFETY:` comment{}",
                    if kind == "fn" {
                        " (or a `# Safety` doc section)"
                    } else {
                        ""
                    }
                ),
            );
        }
    }
}

/// GL002: a `parking_lot` guard (`let g = ….lock();`) live across a
/// fiber yield / poison point. The registry's waiter loops must `drop`
/// their state-map guard before blocking or poisoning: `poison` notifies
/// *under* those map locks, and a parked fiber holding one deadlocks the
/// machine in a way no schedule-based test reliably reproduces.
fn gl002_guard_across_yield(ctx: &FileCtx, out: &mut Vec<Finding>) {
    #[derive(Clone)]
    struct Guard {
        name: String,
        depth: usize,
        line: u32,
        live: bool,
    }
    let toks = &ctx.toks;
    let sig: Vec<usize> = (0..toks.len())
        .filter(|&i| !toks[i].is_comment() && !ctx.attr_mask[i])
        .collect();
    let text = |k: usize| toks[sig[k]].text.as_str();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    // Statement tracking: target of a pending `let name =` / `name =`.
    let mut stmt_bind: Option<String> = None;
    let mut stmt_start = true;
    for k in 0..sig.len() {
        let t = &toks[sig[k]];
        match t.text.as_str() {
            "{" => {
                depth += 1;
                stmt_bind = None;
                stmt_start = true;
                continue;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                stmt_bind = None;
                stmt_start = true;
                continue;
            }
            ";" => {
                // Did this statement bind a lock guard? (`… .lock();`)
                if k >= 4
                    && text(k - 1) == ")"
                    && text(k - 2) == "("
                    && text(k - 3) == "lock"
                    && text(k - 4) == "."
                {
                    if let Some(name) = stmt_bind.take() {
                        if let Some(g) = guards.iter_mut().find(|g| g.name == name) {
                            g.live = true;
                            g.line = t.line;
                        } else {
                            guards.push(Guard {
                                name,
                                depth,
                                line: t.line,
                                live: true,
                            });
                        }
                    }
                }
                stmt_bind = None;
                stmt_start = true;
                continue;
            }
            _ => {}
        }
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "let" if stmt_start => {
                    // `let [mut] name = …`
                    let mut j = k + 1;
                    if j < sig.len() && text(j) == "mut" {
                        j += 1;
                    }
                    if j + 1 < sig.len()
                        && toks[sig[j]].kind == TokKind::Ident
                        && text(j + 1) == "="
                    {
                        stmt_bind = Some(toks[sig[j]].text.clone());
                    }
                }
                // `drop(name)` releases the guard.
                "drop" if k + 3 < sig.len() && text(k + 1) == "(" && text(k + 3) == ")" => {
                    let name = text(k + 2);
                    for g in guards.iter_mut().filter(|g| g.name == name) {
                        g.live = false;
                    }
                }
                name if YIELD_FNS.contains(&name) => {
                    let is_call = k + 1 < sig.len() && text(k + 1) == "(";
                    let is_def = k >= 1 && text(k - 1) == "fn";
                    if is_call && !is_def {
                        let held: Vec<String> = guards
                            .iter()
                            .filter(|g| g.live)
                            .map(|g| format!("`{}` (taken line {})", g.name, g.line))
                            .collect();
                        if !held.is_empty() {
                            push(
                                ctx,
                                out,
                                "GL002",
                                t.line,
                                format!(
                                    "lock guard{} {} live across yield point `{}`; drop the \
                                     guard before blocking (poison notifies under the map locks)",
                                    if held.len() > 1 { "s" } else { "" },
                                    held.join(", "),
                                    name
                                ),
                            );
                        }
                    }
                }
                // Assignment revival: `name = … .lock();`
                name if stmt_start && k + 1 < sig.len() && text(k + 1) == "=" => {
                    let next_is_eq = k + 2 < sig.len() && text(k + 2) == "=";
                    if !next_is_eq {
                        stmt_bind = Some(name.to_string());
                    }
                }
                _ => {}
            }
        }
        stmt_start = false;
    }
}

/// GL003: virtual-time purity — no wall clocks, OS sleeps, or OS
/// randomness in simulation-crate shipping code. `#[cfg(test)]` modules
/// are exempt (they assert *about* wall time); everything else needs an
/// explicit `greenla-allow` with a reason.
fn gl003_virtual_time_purity(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    let sig: Vec<usize> = (0..toks.len())
        .filter(|&i| !toks[i].is_comment() && !ctx.test_mask[i])
        .collect();
    for k in 0..sig.len() {
        for (pat, what) in PURITY_BANS {
            if k + pat.len() <= sig.len()
                && pat.iter().zip(&sig[k..k + pat.len()]).all(|(p, &i)| {
                    toks[i].text == *p
                        && toks[i].kind
                            == if p.chars().next().is_some_and(|c| c.is_alphabetic()) {
                                TokKind::Ident
                            } else {
                                TokKind::Punct
                            }
                })
            {
                // Only fire on the first token of the sequence.
                push(
                    ctx,
                    out,
                    "GL003",
                    toks[sig[k]].line,
                    format!(
                        "{what} in simulation crate `{}` breaks virtual-time purity",
                        crate_of(&ctx.rel_path).unwrap_or("?")
                    ),
                );
                break;
            }
        }
    }
}

/// GL004 (file half): every string literal that reads like a run-abort
/// diagnostic — whether it sits directly in a `panic!` or is routed there
/// through `format!`/`to_string` — must contain one of the chaos
/// battery's stable prefixes; otherwise a fault path can die with a
/// message no test recognises.
fn gl004_stable_diagnostics(ctx: &FileCtx, stable: &[String], out: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    let sig: Vec<usize> = (0..toks.len())
        .filter(|&i| !toks[i].is_comment() && !ctx.test_mask[i])
        .collect();
    for &i in &sig {
        let lit = &toks[i];
        if lit.kind != TokKind::Str {
            continue;
        }
        let is_abort = ABORT_MARKERS.iter().any(|m| lit.text.contains(m));
        if !is_abort {
            continue;
        }
        if !stable.iter().any(|s| lit.text.contains(s.as_str())) {
            push(
                ctx,
                out,
                "GL004",
                lit.line,
                format!(
                    "abort diagnostic {:?} is outside the stable set the chaos battery \
                     asserts (crates/harness/tests/chaos.rs STABLE_DIAGNOSTICS); extend the \
                     set or reuse a stable prefix",
                    truncate(&lit.text, 60)
                ),
            );
        }
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        format!("{}…", s.chars().take(n).collect::<String>())
    }
}

/// GL005: fields of persisted config/schema structs beyond the v1
/// baseline must be `#[serde(default…)]` (or the struct container-level
/// default) so datasets written before the field existed keep parsing.
fn gl005_serde_defaults(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    let sig: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let text = |k: usize| toks[sig[k]].text.as_str();
    for k in 0..sig.len() {
        if toks[sig[k]].kind != TokKind::Ident || text(k) != "struct" || ctx.attr_mask[sig[k]] {
            continue;
        }
        let Some(&(name, baseline)) = (k + 1 < sig.len())
            .then(|| SERDE_BASELINES.iter().find(|(n, _)| *n == text(k + 1)))
            .flatten()
        else {
            continue;
        };
        // Find the body opener (skipping generics).
        let mut b = k + 2;
        while b < sig.len() && text(b) != "{" && text(b) != ";" && text(b) != "(" {
            b += 1;
        }
        if b >= sig.len() || text(b) != "{" {
            continue; // unit or tuple struct: nothing field-named to check
        }
        // Container-level `#[serde(default)]` above the struct?
        let container_default = attr_run_before(ctx, &sig, k)
            .iter()
            .any(|attr| attr_has_serde_default(ctx, attr));
        // Walk fields at depth 1.
        let mut depth = 0usize;
        let mut j = b;
        let mut field_start = true;
        let mut pending_attrs: Vec<(usize, usize)> = Vec::new();
        while j < sig.len() {
            match text(j) {
                "{" | "(" | "[" | "<" => depth += if text(j) == "<" { 0 } else { 1 },
                "}" | ")" | "]" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                "," if depth == 1 => {
                    field_start = true;
                    pending_attrs.clear();
                    j += 1;
                    continue;
                }
                _ => {}
            }
            if depth == 1 && field_start && j > b {
                if text(j) == "#" && ctx.attr_mask[sig[j]] {
                    // Collect this attribute's token range.
                    let start = sig[j];
                    let mut e = j;
                    while e < sig.len() && ctx.attr_mask[sig[e]] {
                        e += 1;
                    }
                    pending_attrs.push((start, sig[e - 1]));
                    j = e;
                    continue;
                }
                if toks[sig[j]].kind == TokKind::Ident && text(j) != "pub" && text(j) != "crate" {
                    // Field name, if followed by `:`.
                    if j + 1 < sig.len() && text(j + 1) == ":" {
                        let fname = text(j);
                        let has_default = container_default
                            || pending_attrs.iter().any(|a| attr_has_serde_default(ctx, a));
                        if !baseline.contains(&fname) && !has_default {
                            push(
                                ctx,
                                out,
                                "GL005",
                                toks[sig[j]].line,
                                format!(
                                    "field `{fname}` of persisted struct `{name}` is beyond \
                                     the v1 baseline and lacks `#[serde(default…)]`; old \
                                     datasets would fail to parse"
                                ),
                            );
                        }
                        field_start = false;
                    }
                }
            }
            j += 1;
        }
    }
}

/// GL006: `#[target_feature(enable = …)]` functions follow the dispatch
/// contract. Three obligations, each its own finding: the function is an
/// `unsafe fn` (a safe signature would let any caller execute ISA
/// instructions the host may not have — the 1.86 safe-`target_feature`
/// rules are deliberately not relied on here, so an exception needs a
/// `greenla-allow` with the justification); it carries a `SAFETY:` /
/// `# Safety` note stating the dispatch contract; and it is a private
/// symbol inside a [`DISPATCH_MODULES`] file, reachable only through the
/// fn-pointer tables the dispatcher hands out after feature detection.
fn gl006_target_feature_dispatch(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let toks = &ctx.toks;
    let mut i = 0;
    while i < toks.len() {
        if !ctx.attr_mask[i] {
            i += 1;
            continue;
        }
        // One contiguous attribute run (possibly several stacked `#[…]`s).
        let start = i;
        let mut end = i;
        while end < toks.len() && ctx.attr_mask[end] {
            end += 1;
        }
        i = end;
        let Some(tf) = toks[start..end]
            .iter()
            .find(|t| t.kind == TokKind::Ident && t.text == "target_feature")
        else {
            continue;
        };
        // Scan past comments to the `fn` keyword, collecting modifiers.
        let (mut is_unsafe, mut is_pub, mut fn_at) = (false, false, None);
        let mut j = end;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_comment() || ctx.attr_mask[j] {
                j += 1;
                continue;
            }
            match (t.kind, t.text.as_str()) {
                (TokKind::Ident, "fn") => {
                    fn_at = Some(j);
                    break;
                }
                (TokKind::Ident, "unsafe") => is_unsafe = true,
                (TokKind::Ident, "pub") => is_pub = true,
                (TokKind::Ident, "const" | "extern" | "crate" | "super" | "self" | "in") => {}
                (TokKind::Str, _) | (TokKind::Punct, "(" | ")") => {}
                _ => break, // attribute attached to a non-fn item
            }
            j += 1;
        }
        let Some(fa) = fn_at else { continue };
        // Findings anchor on the `fn` line: that is the next *code* line,
        // so a whole-line `greenla-allow` above the attribute stack (and a
        // trailing one on the signature) both cover it.
        let line = toks[fa].line;
        let name = ctx
            .next_sig(fa + 1)
            .map(|k| toks[k].text.clone())
            .unwrap_or_default();
        if !is_unsafe {
            push(
                ctx,
                out,
                "GL006",
                line,
                format!(
                    "#[target_feature] fn `{name}` is not `unsafe`: a plain call could \
                     execute instructions the host lacks; mark it `unsafe fn` (or suppress \
                     with the safe-target-feature justification)"
                ),
            );
        }
        if is_pub {
            push(
                ctx,
                out,
                "GL006",
                line,
                format!(
                    "#[target_feature] fn `{name}` is `pub`; ISA kernels must stay private \
                     and be handed out as fn pointers by the dispatcher after feature \
                     detection"
                ),
            );
        }
        if !DISPATCH_MODULES.contains(&ctx.rel_path.as_str()) {
            push(
                ctx,
                out,
                "GL006",
                line,
                format!(
                    "#[target_feature] fn `{name}` outside the dispatch module(s) {}; \
                     feature-gated kernels live behind the runtime dispatcher only",
                    DISPATCH_MODULES.join(", ")
                ),
            );
        }
        if !ctx.annotation_above_contains(tf.line, "SAFETY:", false)
            && !ctx.annotation_above_contains(tf.line, "# Safety", true)
        {
            push(
                ctx,
                out,
                "GL006",
                line,
                format!(
                    "#[target_feature] fn `{name}` has no SAFETY/dispatch note; document \
                     that only the feature-detecting dispatcher may reach it"
                ),
            );
        }
    }
}

/// Token index ranges of the attributes directly above significant token
/// `sig[k]` (walking backwards through comments and attributes).
fn attr_run_before(ctx: &FileCtx, sig: &[usize], k: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    // Walk raw tokens backwards from the `struct` keyword, through
    // comments/attrs; also step over `pub`, derive-helper idents, etc.
    let mut i = sig[k];
    while i > 0 {
        i -= 1;
        let t = &ctx.toks[i];
        if t.is_comment() {
            continue;
        }
        if ctx.attr_mask[i] {
            // Find this attribute's start.
            let end = i;
            let mut start = i;
            while start > 0 && ctx.attr_mask[start - 1] {
                start -= 1;
            }
            out.push((start, end));
            i = start;
            continue;
        }
        if t.kind == TokKind::Ident && (t.text == "pub" || t.text == "crate") {
            continue;
        }
        if t.text == ")" || t.text == "(" {
            continue; // pub(crate)
        }
        break;
    }
    out
}

/// Does the attribute spanning raw-token range `attr` say
/// `serde(default…)`?
fn attr_has_serde_default(ctx: &FileCtx, attr: &(usize, usize)) -> bool {
    let toks = &ctx.toks[attr.0..=attr.1];
    let mut saw_serde = false;
    let mut saw_default = false;
    for t in toks {
        if t.kind == TokKind::Ident {
            saw_serde |= t.text == "serde";
            saw_default |= t.text == "default";
        }
    }
    saw_serde && saw_default
}
