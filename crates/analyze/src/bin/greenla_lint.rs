#![forbid(unsafe_code)]
//! `greenla-lint` — run the workspace static-analysis pass.
//!
//! ```text
//! greenla-lint [--root DIR] [--json] [--json-out FILE] [--quiet]
//! greenla-lint --file F.rs [--as crates/mpi/src/f.rs] [--stable "p1,p2"]
//! ```
//!
//! The second form lints one file as if it lived at the `--as` path
//! (crate-scoped rules key off the path; `--stable` supplies the GL004
//! diagnostic set) — that is how the violation fixtures are driven.
//!
//! Exit codes: `0` no unsuppressed findings, `1` at least one
//! unsuppressed finding, `2` usage or I/O error. CI runs this as the
//! blocking `analyze` job and uploads the `--json-out` artifact; see
//! ARCHITECTURE.md §11 for the rules and the suppression syntax.

use greenla_analyze::{analyze_workspace, find_workspace_root, render_human};
use greenla_analyze::{file::FileCtx, rules::check_file};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_stdout = false;
    let mut json_out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut file: Option<PathBuf> = None;
    let mut as_path: Option<String> = None;
    let mut stable: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a directory"),
            },
            "--file" => match args.next() {
                Some(v) => file = Some(PathBuf::from(v)),
                None => return usage("--file needs a path"),
            },
            "--as" => match args.next() {
                Some(v) => as_path = Some(v),
                None => return usage("--as needs a workspace-relative path"),
            },
            "--stable" => match args.next() {
                Some(v) => stable = v.split(',').map(|s| s.to_string()).collect(),
                None => return usage("--stable needs a comma-separated list"),
            },
            "--json" => json_stdout = true,
            "--json-out" => match args.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => return usage("--json-out needs a file path"),
            },
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                eprintln!(
                    "greenla-lint [--root DIR] [--json] [--json-out FILE] [--quiet]\n\
                     greenla-lint --file F.rs [--as REL] [--stable \"p1,p2\"]\n\
                     Workspace lints GL001-GL005; see ARCHITECTURE.md §11."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if let Some(path) = file {
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("greenla-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let rel = as_path.unwrap_or_else(|| path.to_string_lossy().into_owned());
        let ctx = FileCtx::new(&rel, &src);
        let findings = check_file(&ctx, &stable);
        return finish(&findings, json_stdout, json_out, quiet);
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => return usage("no workspace root found; pass --root"),
    };
    let findings = match analyze_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("greenla-lint: failed to analyze {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    finish(&findings, json_stdout, json_out, quiet)
}

fn finish(
    findings: &[greenla_analyze::rules::Finding],
    json_stdout: bool,
    json_out: Option<PathBuf>,
    quiet: bool,
) -> ExitCode {
    if let Some(path) = &json_out {
        let json = serde_json::to_string_pretty(&findings).expect("findings serialize");
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("greenla-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    if json_stdout {
        println!(
            "{}",
            serde_json::to_string_pretty(&findings).expect("findings serialize")
        );
    } else if !quiet {
        print!("{}", render_human(findings));
    }
    if findings.iter().any(|f| !f.suppressed) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("greenla-lint: {msg} (try --help)");
    ExitCode::from(2)
}
