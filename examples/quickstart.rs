//! Quickstart: solve one linear system with both solvers under the
//! white-box energy monitor and print the per-node energy report — the
//! whole pipeline of the paper in ~80 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use greenla::cluster::placement::{LoadLayout, Placement};
use greenla::cluster::spec::ClusterSpec;
use greenla::cluster::PowerModel;
use greenla::ime::{solve_imep, ImepOptions};
use greenla::linalg::generate;
use greenla::monitor::monitoring::MonitorConfig;
use greenla::monitor::protocol::monitored_run;
use greenla::monitor::report::JobSummary;
use greenla::mpi::Machine;
use greenla::rapl::RaplSim;
use greenla::scalapack::pdgesv::pdgesv;
use std::sync::Arc;

fn main() {
    let n = 360;
    let ranks = 16;
    println!("greenla quickstart: n={n}, {ranks} ranks, full-load layout\n");

    // The input system — the paper loads it from a file for repeatability;
    // generators are deterministic per seed, which serves the same goal.
    let sys = generate::diag_dominant(n, 2023);

    for solver in ["IMe", "ScaLAPACK"] {
        // A fresh simulated cluster per run (fresh energy counters).
        let spec = ClusterSpec::test_cluster(2, 4);
        let placement = Placement::layout(&spec.node, ranks, LoadLayout::FullLoad).unwrap();
        let power = PowerModel::scaled_for(&spec.node);
        let machine = Machine::new(spec, placement, power, 7).unwrap();
        let rapl = Arc::new(RaplSim::new(machine.ledger(), machine.power().clone(), 7));

        let out = machine.run(|ctx| {
            let world = ctx.world();
            let run = monitored_run(ctx, &rapl, &MonitorConfig::default(), |ctx, handle| {
                // Allocation phase, then the solve.
                ctx.touch_memory(8 * (n * n / ranks) as u64);
                handle.phase(ctx, "allocation").unwrap();
                let x = match solver {
                    "IMe" => solve_imep(ctx, &world, &sys, ImepOptions::optimized()).unwrap(),
                    _ => pdgesv(ctx, &world, &sys, 32).unwrap(),
                };
                handle.phase(ctx, "execution").unwrap();
                x
            })
            .unwrap();
            (run.result, run.report)
        });

        let x = &out.results[0].0;
        let reports: Vec<_> = out.results.iter().filter_map(|(_, r)| r.clone()).collect();
        let summary = JobSummary::aggregate(&reports);
        println!("── {solver} ──");
        println!("  residual          : {:.3e}", sys.residual(x));
        println!(
            "  duration          : {:.6} s (virtual)",
            summary.duration_s
        );
        println!("  package energy    : {:.2} J", summary.pkg_energy_j);
        println!("  DRAM energy       : {:.2} J", summary.dram_energy_j);
        println!("  total energy      : {:.2} J", summary.total_energy_j);
        println!("  mean power        : {:.1} W", summary.mean_power_w);
        println!("  messages          : {}", out.traffic.msgs);
        println!(
            "  volume            : {} f64 elements",
            out.traffic.volume_elems()
        );
        for r in &reports {
            println!(
                "  node {}: monitor rank {}, {} events, {:.2} J",
                r.node,
                r.monitor_rank,
                r.events.len(),
                r.total_energy_j()
            );
        }
        println!();
    }
    println!("Tip: `cargo run --release -p greenla-harness --bin repro -- --exp all`");
    println!("regenerates every table and figure of the paper.");
}
