//! Steady-state heat distribution on a square plate: a dense 2-D Poisson
//! system (the PDE workload class the paper's introduction motivates),
//! solved with ScaLAPACK-lite's distributed LU under energy monitoring,
//! with IMe as a cross-check.
//!
//! ```text
//! cargo run --release --example poisson_heat
//! ```

use greenla::cluster::placement::{LoadLayout, Placement};
use greenla::cluster::spec::ClusterSpec;
use greenla::cluster::PowerModel;
use greenla::ime::{solve_imep, ImepOptions};
use greenla::linalg::generate;
use greenla::monitor::monitoring::MonitorConfig;
use greenla::monitor::protocol::monitored_run;
use greenla::monitor::report::JobSummary;
use greenla::mpi::Machine;
use greenla::rapl::RaplSim;
use greenla::scalapack::pdgesv::pdgesv;
use std::sync::Arc;

fn main() {
    let k = 18; // grid side → n = 324 unknowns
    let n = k * k;
    println!("steady-state heat on a {k}×{k} plate ({n} unknowns)\n");

    // -Δu = f with a hot spot in the middle of the plate.
    let mut sys = generate::poisson2d(k, 0);
    sys.b = vec![0.0; n];
    sys.b[(k / 2) * k + k / 2] = 1.0; // unit heat source at the centre
    sys.x_ref = None;

    let spec = ClusterSpec::test_cluster(2, 4);
    let placement = Placement::layout(&spec.node, 16, LoadLayout::FullLoad).unwrap();
    let power = PowerModel::scaled_for(&spec.node);
    let machine = Machine::new(spec, placement, power, 31).unwrap();
    let rapl = Arc::new(RaplSim::new(machine.ledger(), machine.power().clone(), 31));

    let out = machine.run(|ctx| {
        let world = ctx.world();
        let run = monitored_run(ctx, &rapl, &MonitorConfig::default(), |ctx, _| {
            pdgesv(ctx, &world, &sys, 16).expect("pdgesv")
        })
        .unwrap();
        (run.result, run.report)
    });
    let u = &out.results[0].0;
    let reports: Vec<_> = out.results.iter().filter_map(|(_, r)| r.clone()).collect();
    let s = JobSummary::aggregate(&reports);
    println!("ScaLAPACK solve: residual {:.2e}", sys.residual(u));
    println!(
        "energy {:.3} J over {:.1} µs of virtual time\n",
        s.total_energy_j,
        s.duration_s * 1e6
    );

    // Cross-check with IMe on a fresh machine.
    let spec2 = ClusterSpec::test_cluster(2, 4);
    let placement2 = Placement::layout(&spec2.node, 16, LoadLayout::FullLoad).unwrap();
    let power2 = PowerModel::scaled_for(&spec2.node);
    let machine2 = Machine::new(spec2, placement2, power2, 31).unwrap();
    let out2 = machine2.run(|ctx| {
        let world = ctx.world();
        solve_imep(ctx, &world, &sys, ImepOptions::optimized()).expect("IMeP")
    });
    let u2 = &out2.results[0];
    let diff = u
        .iter()
        .zip(u2)
        .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
    println!("IMe cross-check: max |u_LU − u_IMe| = {diff:.2e}");

    // Temperature map (coarse ASCII: hotter = denser glyph).
    let max = u.iter().cloned().fold(0.0f64, f64::max);
    println!("\ntemperature map (peak {max:.4} at the centre):");
    let shades = [' ', '.', ':', '+', '*', '#', '@'];
    for gy in 0..k {
        let row: String = (0..k)
            .map(|gx| {
                let v = u[gy * k + gx] / max;
                shades[((v * (shades.len() - 1) as f64).round() as usize).min(shades.len() - 1)]
            })
            .collect();
        println!("  {row}");
    }
    // Physics: the peak must be at the source, temperatures positive,
    // decaying toward the (implicitly cold) boundary.
    let peak_idx = u
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert_eq!(
        peak_idx,
        (k / 2) * k + k / 2,
        "hot spot must be at the source"
    );
    assert!(
        u.iter().all(|&v| v >= -1e-12),
        "temperatures cannot be negative"
    );
    println!("\nphysics checks passed (positive field, peak at the source).");
}
