//! Circuit analysis with the Inhibition Method — the problem class IMe was
//! invented for (Ciampolini, *L'Elettrotecnica* 1963): nodal analysis of a
//! resistive network, solved by the method's hierarchy of elementary
//! sub-systems.
//!
//! Builds a random resistor network's nodal conductance matrix `G`, applies
//! a current-injection vector, and solves `G·v = i` for the node voltages —
//! sequentially, in parallel, and via LU as a cross-check. Also demonstrates
//! the linear-system file format the paper uses for repeatable inputs.
//!
//! ```text
//! cargo run --release --example circuit_analysis
//! ```

use greenla::cluster::placement::Placement;
use greenla::cluster::spec::ClusterSpec;
use greenla::cluster::PowerModel;
use greenla::ime::{solve_imep, solve_seq, ImepOptions};
use greenla::linalg::{generate, io, norms};
use greenla::mpi::Machine;
use greenla::scalapack::getrs::gesv;

fn main() {
    let nodes = 200; // circuit nodes (unknown voltages)
    println!("nodal analysis of a {nodes}-node resistor network\n");

    // Conductance matrix: symmetric, diagonally dominant — IMe's home turf,
    // no pivoting needed.
    let mut sys = generate::circuit_network(nodes, 99);
    // Inject 1 A at node 0, extract at the last node.
    sys.b = vec![0.0; nodes];
    sys.b[0] = 1.0;
    sys.b[nodes - 1] = -1.0;
    sys.x_ref = None;

    // Persist/reload through the repeatable-input file format.
    let path = std::env::temp_dir().join("greenla_circuit.sys");
    io::save(&sys, &path).expect("write system file");
    let sys = io::load(&path).expect("reload system file");
    println!("system written to and reloaded from {}", path.display());

    // Sequential IMe.
    let (v_seq, stats) = solve_seq(&sys).expect("sequential IMe");
    println!(
        "sequential IMe : {} levels, {:.2e} flops, residual {:.2e}",
        stats.levels,
        stats.flops as f64,
        sys.residual(&v_seq)
    );

    // Parallel IMeP on a simulated 2-node cluster.
    let spec = ClusterSpec::test_cluster(2, 4);
    let placement = Placement::packed(&spec.node, 8).unwrap();
    let power = PowerModel::scaled_for(&spec.node);
    let machine = Machine::new(spec, placement, power, 3).unwrap();
    let out = machine.run(|ctx| {
        let world = ctx.world();
        solve_imep(ctx, &world, &sys, ImepOptions::paper()).expect("IMeP")
    });
    let v_par = &out.results[0];
    println!(
        "parallel IMeP  : 8 ranks, {:.1} µs virtual, residual {:.2e}",
        out.makespan * 1e6,
        sys.residual(v_par)
    );

    // LU cross-check.
    let v_lu = gesv(&sys.a, &sys.b, 32).expect("LU");
    let max_diff = v_seq
        .iter()
        .zip(&v_lu)
        .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
    println!("LU cross-check : max |v_IMe − v_LU| = {max_diff:.2e}");

    // Physics sanity: voltage drops monotonically along the injection path
    // direction (node 0 is the source, the last node the sink).
    let v0 = v_seq[0];
    let vn = v_seq[nodes - 1];
    println!(
        "\nvoltages: source {v0:.4} V, sink {vn:.4} V (drop {:.4} V)",
        v0 - vn
    );
    assert!(v0 > vn, "current must flow downhill");
    // Total injected power = i·v (dissipated in the resistors).
    let p: f64 = sys.b.iter().zip(&v_seq).map(|(i, v)| i * v).sum();
    println!("dissipated power: {p:.4} W (must be positive)");
    assert!(p > 0.0);
    println!(
        "\nKirchhoff checks out: residual {:.2e}",
        norms::scaled_residual(&sys.a, &v_seq, &sys.b)
    );
    std::fs::remove_file(&path).ok();
}
