//! Transient circuit analysis: many right-hand sides, one decomposition.
//!
//! The Inhibition Method's reduction is independent of the source vector,
//! so a time-varying excitation (here a sinusoidal current injected into a
//! resistor network, quasi-static analysis) costs one table reduction plus
//! an O(n²/N) solve per time step — the workload pattern IMe's circuit
//! heritage was built for. The run is monitored black-box style, producing
//! a node power trace alongside the electrical results.
//!
//! ```text
//! cargo run --release --example transient_circuit
//! ```

use greenla::cluster::placement::{LoadLayout, Placement};
use greenla::cluster::spec::ClusterSpec;
use greenla::cluster::PowerModel;
use greenla::ime::{reduce_table, ImepOptions};
use greenla::linalg::generate;
use greenla::monitor::blackbox::blackbox_run;
use greenla::monitor::monitoring::MonitorConfig;
use greenla::mpi::Machine;
use greenla::rapl::RaplSim;
use std::sync::Arc;

fn main() {
    let nodes_in_circuit = 160;
    let steps = 24;
    println!(
        "transient analysis: {nodes_in_circuit}-node network, {steps} time steps, one reduction\n"
    );
    let sys = generate::circuit_network(nodes_in_circuit, 7);

    let spec = ClusterSpec::test_cluster(2, 4);
    let placement = Placement::layout(&spec.node, 16, LoadLayout::FullLoad).unwrap();
    let power = PowerModel::scaled_for(&spec.node);
    let machine = Machine::new(spec, placement, power, 77).unwrap();
    let rapl = Arc::new(RaplSim::new(machine.ledger(), machine.power().clone(), 77));

    let out = machine.run(|ctx| {
        blackbox_run(ctx, &rapl, &MonitorConfig::default(), 0.5e-3, |ctx, app| {
            // The unmodified application: reduce once, solve per step.
            let table = reduce_table(ctx, app, &sys, ImepOptions::optimized()).unwrap();
            let n = sys.n();
            let mut peak: Vec<(f64, f64)> = Vec::new();
            for step in 0..steps {
                let phase = step as f64 / steps as f64 * std::f64::consts::TAU;
                let mut b = vec![0.0; n];
                b[0] = phase.sin(); // AC source at node 0
                b[n - 1] = -phase.sin(); // return path
                let v = table.solve(ctx, app, &b);
                let vmax = v.iter().cloned().fold(f64::MIN, f64::max);
                peak.push((phase, vmax));
            }
            peak
        })
        .unwrap()
    });

    // Electrical results from any application rank.
    let peaks = out
        .results
        .iter()
        .find_map(|o| o.result.clone())
        .expect("application result");
    println!("phase [rad] → peak node voltage [V]:");
    for (phase, v) in peaks.iter().step_by(4) {
        let bar = "▪".repeat(((v.abs() * 400.0) as usize).min(40));
        println!("  {phase:5.2}  {v:+8.5}  {bar}");
    }
    // The response of a resistive network is linear in the source:
    // peak voltage ∝ |sin(phase)|.
    let v_quarter = peaks[steps / 4].1; // sin = 1
    let v_eighth = peaks[steps / 8].1; // sin = √2/2
    let ratio = v_eighth / v_quarter;
    println!("\nlinearity check: v(π/4)/v(π/2) = {ratio:.4} (expect ≈ 0.7071)");
    assert!((ratio - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);

    // Power trace from the black-box daemons.
    for report in out.results.iter().filter_map(|o| o.report.as_ref()) {
        let trace = report.power_trace();
        println!(
            "\nnode {} power trace: {} samples over {:.3} ms, {:.2} J total",
            report.node,
            report.samples.len(),
            report.end_s * 1e3,
            report.total_energy_j()
        );
        let wmax = trace.iter().map(|&(_, w)| w).fold(1.0f64, f64::max);
        for (t, w) in trace.iter().step_by((trace.len() / 12).max(1)) {
            let bar = "█".repeat(((w / wmax) * 30.0) as usize);
            println!("  {:7.3} ms {w:7.2} W  {bar}", t * 1e3);
        }
    }
}
