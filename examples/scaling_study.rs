//! Strong-scaling study with energy monitoring: one matrix size, a sweep
//! of rank counts and load layouts, both solvers — a miniature of the
//! paper's §5 evaluation, printed as a table.
//!
//! ```text
//! cargo run --release --example scaling_study
//! ```

use greenla::cluster::placement::{LoadLayout, Placement};
use greenla::cluster::spec::ClusterSpec;
use greenla::cluster::PowerModel;
use greenla::ime::{solve_imep, ImepOptions};
use greenla::linalg::generate;
use greenla::monitor::monitoring::MonitorConfig;
use greenla::monitor::protocol::monitored_run;
use greenla::monitor::report::JobSummary;
use greenla::mpi::Machine;
use greenla::rapl::RaplSim;
use greenla::scalapack::pdgesv::pdgesv;
use std::sync::Arc;

fn run(
    solver: &str,
    sys: &generate::LinearSystem,
    ranks: usize,
    layout: LoadLayout,
) -> (f64, f64, f64) {
    let node = greenla::cluster::spec::NodeSpec::test_node(4);
    let placement = Placement::layout(&node, ranks, layout).unwrap();
    let spec = ClusterSpec {
        node: node.clone(),
        nodes: placement.nodes_used(),
        net: greenla::cluster::Interconnect::omni_path(),
    };
    let power = PowerModel::scaled_for(&node);
    let machine = Machine::new(spec, placement, power, 11).unwrap();
    let rapl = Arc::new(RaplSim::new(machine.ledger(), machine.power().clone(), 11));
    let out = machine.run(|ctx| {
        let world = ctx.world();
        monitored_run(
            ctx,
            &rapl,
            &MonitorConfig::default(),
            |ctx, _| match solver {
                "IMe" => solve_imep(ctx, &world, sys, ImepOptions::optimized()).unwrap(),
                _ => pdgesv(ctx, &world, sys, 32).unwrap(),
            },
        )
        .unwrap()
        .report
    });
    let reports: Vec<_> = out.results.into_iter().flatten().collect();
    let s = JobSummary::aggregate(&reports);
    (s.duration_s, s.total_energy_j, s.mean_power_w)
}

fn main() {
    let n = 480;
    let sys = generate::diag_dominant(n, 5);
    println!("strong scaling at n={n} (virtual time/energy on the simulated cluster)\n");
    println!(
        "{:<10} {:>6} {:<12} {:>12} {:>12} {:>10}",
        "solver", "ranks", "layout", "time [s]", "energy [J]", "power [W]"
    );
    for solver in ["IMe", "ScaLAPACK"] {
        for &ranks in &[16usize, 32, 64] {
            for layout in LoadLayout::all() {
                let (t, e, p) = run(solver, &sys, ranks, layout);
                println!(
                    "{solver:<10} {ranks:>6} {:<12} {t:>12.6} {e:>12.2} {p:>10.1}",
                    layout.label()
                );
            }
        }
    }
    println!(
        "\nExpected shapes (the paper's findings): time shrinks with ranks, \
         full-load rows use the least energy, ScaLAPACK rows sit below IMe."
    );
}
