//! Fault tolerance demo: IMe's checksum-based in-band recovery — the
//! capability the paper cites as IMe's key advantage over the
//! checkpoint/restart that Gaussian elimination needs (Artioli, Loreti &
//! Ciampolini, SRDS 2019).
//!
//! A rank loses one of its inhibition-table columns mid-solve at several
//! points; the survivors reconstruct it from the running checksum column
//! and the job completes with the same answer as a fault-free run.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use greenla::cluster::placement::Placement;
use greenla::cluster::spec::ClusterSpec;
use greenla::cluster::PowerModel;
use greenla::ime::ft::{solve_imep_ft, FailureSpec};
use greenla::ime::solve_seq;
use greenla::linalg::generate;
use greenla::mpi::Machine;

fn main() {
    let n = 240;
    let ranks = 8;
    let sys = generate::diag_dominant(n, 17);
    let (x_ref, _) = solve_seq(&sys).expect("reference solve");
    println!("IMe fault-tolerance demo: n={n}, {ranks} ranks\n");

    let scenarios = [
        ("no fault", None),
        (
            "early loss of a right column",
            Some(FailureSpec {
                level: n - 2,
                column: n + 7,
            }),
        ),
        (
            "mid-solve loss of a left column",
            Some(FailureSpec {
                level: n / 2,
                column: 3,
            }),
        ),
        (
            "late loss near the end",
            Some(FailureSpec {
                level: 2,
                column: n + 1,
            }),
        ),
        (
            "loss of a master-owned column",
            Some(FailureSpec {
                level: n / 3,
                column: 0,
            }),
        ),
    ];

    for (label, failure) in scenarios {
        let spec = ClusterSpec::test_cluster(2, 4);
        let placement = Placement::packed(&spec.node, ranks).unwrap();
        let power = PowerModel::scaled_for(&spec.node);
        let machine = Machine::new(spec, placement, power, 23).unwrap();
        let out = machine.run(|ctx| {
            let world = ctx.world();
            solve_imep_ft(ctx, &world, &sys, failure).expect("FT solve")
        });
        let x = &out.results[0];
        let err = x
            .iter()
            .zip(&x_ref)
            .fold(0.0f64, |m, (a, b)| m.max((a - b).abs()));
        println!(
            "{label:<34} residual {:.2e}   max|x − x_ref| {err:.2e}   time {:.1} µs",
            sys.residual(x),
            out.makespan * 1e6
        );
        assert!(sys.residual(x) < 1e-9, "recovery must preserve exactness");
    }

    println!(
        "\nEvery faulty run recovered in-band: the per-level update is a row \
         operation, so a checksum column maintained with the same formula \
         always equals the sum of all columns — one extra column of \
         arithmetic instead of a checkpoint/restart cycle."
    );
}
