//! Randomised-property tests on the workspace's core invariants: solver
//! exactness over random well-conditioned systems and shapes, block-cyclic
//! index algebra, RAPL counter arithmetic, and placement bookkeeping.
//!
//! Each test draws its cases from a seeded [`ChaCha8Rng`], so failures are
//! reproducible: the case loop is deterministic and every assertion
//! message carries the drawn parameters.

use greenla::cluster::placement::{LoadLayout, Placement};
use greenla::cluster::spec::NodeSpec;
use greenla::ime::solve_seq;
use greenla::linalg::{generate, io};
use greenla::scalapack::desc::{g2l, l2g, numroc, owner};
use greenla::scalapack::getrs::gesv;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Sequential IMe solves every diagonally dominant system exactly.
#[test]
fn ime_exact_on_random_dominant_systems() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA11CE);
    for _ in 0..48 {
        let n = rng.gen_range(1usize..60);
        let seed = rng.gen_range(0u64..5000);
        let sys = generate::diag_dominant(n, seed);
        let (x, stats) = solve_seq(&sys).unwrap();
        let residual = sys.residual(&x);
        assert!(residual < 1e-11, "n={n} seed={seed}: residual {residual}");
        assert_eq!(stats.levels, n, "n={n} seed={seed}");
    }
}

/// LU with partial pivoting agrees with IMe on the same system.
#[test]
fn lu_and_ime_agree() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB0B);
    for _ in 0..48 {
        let n = rng.gen_range(2usize..48);
        let seed = rng.gen_range(0u64..5000);
        let nb = rng.gen_range(1usize..20);
        let sys = generate::diag_dominant(n, seed);
        let (x_ime, _) = solve_seq(&sys).unwrap();
        let x_lu = gesv(&sys.a, &sys.b, nb).unwrap();
        for (a, b) in x_ime.iter().zip(&x_lu) {
            assert!(
                (a - b).abs() < 1e-8,
                "n={n} seed={seed} nb={nb}: {a} vs {b}"
            );
        }
    }
}

/// LU block size never changes the answer.
#[test]
fn lu_block_size_invariance() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE);
    for _ in 0..48 {
        let n = rng.gen_range(2usize..40);
        let seed = rng.gen_range(0u64..1000);
        let nb1 = rng.gen_range(1usize..16);
        let nb2 = rng.gen_range(16usize..70);
        let sys = generate::circuit_network(n, seed);
        let x1 = gesv(&sys.a, &sys.b, nb1).unwrap();
        let x2 = gesv(&sys.a, &sys.b, nb2).unwrap();
        for (a, b) in x1.iter().zip(&x2) {
            assert!(
                (a - b).abs() < 1e-9,
                "n={n} seed={seed} nb1={nb1} nb2={nb2}: {a} vs {b}"
            );
        }
    }
}

/// The linear-system file format round-trips bit-exactly.
#[test]
fn system_file_roundtrip() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xD15C);
    for _ in 0..48 {
        let n = rng.gen_range(1usize..24);
        let seed = rng.gen_range(0u64..5000);
        let sys = generate::diag_dominant(n, seed);
        let back = io::from_str(&io::to_string(&sys)).unwrap();
        assert_eq!(back.a, sys.a, "n={n} seed={seed}");
        assert_eq!(back.b, sys.b, "n={n} seed={seed}");
    }
}

/// Block-cyclic index algebra: numroc partitions exactly, g2l/l2g invert
/// each other, local indices are dense.
#[test]
fn block_cyclic_algebra() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xE1F);
    for _ in 0..48 {
        let n = rng.gen_range(1usize..300);
        let nb = rng.gen_range(1usize..32);
        let p = rng.gen_range(1usize..12);
        let total: usize = (0..p).map(|i| numroc(n, nb, i, p)).sum();
        assert_eq!(total, n, "n={n} nb={nb} p={p}");
        for g in (0..n).step_by(7) {
            let o = owner(g, nb, p);
            assert!(o < p, "n={n} nb={nb} p={p} g={g}");
            assert_eq!(l2g(g2l(g, nb, p), nb, o, p), g, "n={n} nb={nb} p={p}");
        }
    }
}

/// Placement invariants for every layout: no core is shared, socket loads
/// match the layout, node count divides exactly.
#[test]
fn placement_invariants() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF00D);
    for _ in 0..48 {
        let nodes_wanted = rng.gen_range(1usize..10);
        let cps = rng.gen_range(2usize..8);
        let node = NodeSpec::test_node(cps);
        for layout in LoadLayout::all() {
            let rpn = layout.ranks_per_node(&node);
            let ranks = rpn * nodes_wanted;
            let p = Placement::layout(&node, ranks, layout).unwrap();
            assert_eq!(p.nodes_used(), nodes_wanted, "cps={cps} layout={layout}");
            let mut seen = std::collections::HashSet::new();
            for r in 0..ranks {
                assert!(seen.insert(p.core_of(r)), "cps={cps} core shared");
            }
            // Socket population on node 0 matches the layout.
            let (s0, s1) = layout.per_socket(&node);
            let on0 = (0..ranks)
                .filter(|&r| p.node_of(r) == 0 && p.core_of(r).socket == 0)
                .count();
            let on1 = (0..ranks)
                .filter(|&r| p.node_of(r) == 0 && p.core_of(r).socket == 1)
                .count();
            assert_eq!((on0, on1), (s0, s1), "cps={cps} layout={layout}");
        }
    }
}

/// RAPL counter arithmetic: wrap-corrected deltas recover the true energy
/// difference for any pair of cumulative readings within one wrap.
#[test]
fn rapl_delta_recovers_energy() {
    use greenla::rapl::counter::{delta_joules, joules_to_count};
    let mut rng = ChaCha8Rng::seed_from_u64(0xAB5);
    for _ in 0..48 {
        let e1 = rng.gen_range(0.0f64..500_000.0);
        let de = rng.gen_range(0.0f64..200_000.0);
        let unit = 2.0f64.powi(-14);
        let c1 = joules_to_count(e1, unit);
        let c2 = joules_to_count(e1 + de, unit);
        let recovered = delta_joules(c1, c2, unit);
        assert!(
            (recovered - de).abs() <= unit * 2.0,
            "e1={e1} de={de}: {recovered} vs {de}"
        );
    }
}

/// The power model is monotone: more active cores, more power; energy is
/// non-decreasing in time.
#[test]
fn power_model_monotone() {
    use greenla::cluster::ledger::Ledger;
    use greenla::cluster::PowerModel;
    let mut rng = ChaCha8Rng::seed_from_u64(0x90F);
    for _ in 0..48 {
        let active = rng.gen_range(0usize..24);
        let t = rng.gen_range(0.01f64..100.0);
        let pm = PowerModel::deterministic();
        let p1 = pm.pkg_power_w(24, active, 0);
        let p2 = pm.pkg_power_w(24, (active + 1).min(24), 0);
        assert!(p2 >= p1, "active={active}");
        // idle energy scales linearly in t
        let ledger = Ledger::new(NodeSpec::marconi_a3(), 1);
        let e1 = pm.pkg_energy_j(&ledger, 0, 0, t, 0);
        let e2 = pm.pkg_energy_j(&ledger, 0, 0, t * 2.0, 0);
        assert!((e2 / e1 - 2.0).abs() < 1e-9, "t={t}");
    }
}

/// Distributed LU equals sequential LU for random shapes and grids
/// (slower: spins up a simulated machine per case).
#[test]
fn pdgesv_matches_gesv() {
    use greenla::cluster::spec::ClusterSpec;
    use greenla::cluster::PowerModel;
    use greenla::mpi::Machine;
    use greenla::scalapack::pdgesv::pdgesv;
    let mut rng = ChaCha8Rng::seed_from_u64(0x5CA1A);
    for _ in 0..12 {
        let n = rng.gen_range(8usize..40);
        let seed = rng.gen_range(0u64..100);
        let ranks = rng.gen_range(2usize..9);
        let sys = generate::diag_dominant(n, seed);
        let reference = gesv(&sys.a, &sys.b, 8).unwrap();
        let spec = ClusterSpec::test_cluster(4, 4);
        let placement = Placement::packed(&spec.node, ranks).unwrap();
        let machine = Machine::new(spec, placement, PowerModel::deterministic(), seed).unwrap();
        let out = machine.run(|ctx| {
            let world = ctx.world();
            pdgesv(ctx, &world, &sys, 4).unwrap()
        });
        for x in &out.results {
            for (a, b) in x.iter().zip(&reference) {
                assert!(
                    (a - b).abs() < 1e-9,
                    "n={n} seed={seed} ranks={ranks}: {a} vs {b}"
                );
            }
        }
    }
}
