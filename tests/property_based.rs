//! Property-based tests (proptest) on the workspace's core invariants:
//! solver exactness over random well-conditioned systems and shapes,
//! block-cyclic index algebra, RAPL counter arithmetic, and placement
//! bookkeeping.

use greenla::cluster::placement::{LoadLayout, Placement};
use greenla::cluster::spec::NodeSpec;
use greenla::ime::solve_seq;
use greenla::linalg::{generate, io};
use greenla::scalapack::desc::{g2l, l2g, numroc, owner};
use greenla::scalapack::getrs::gesv;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequential IMe solves every diagonally dominant system exactly.
    #[test]
    fn ime_exact_on_random_dominant_systems(n in 1usize..60, seed in 0u64..5000) {
        let sys = generate::diag_dominant(n, seed);
        let (x, stats) = solve_seq(&sys).unwrap();
        prop_assert!(sys.residual(&x) < 1e-11, "residual {}", sys.residual(&x));
        prop_assert_eq!(stats.levels, n);
    }

    /// LU with partial pivoting agrees with IMe on the same system.
    #[test]
    fn lu_and_ime_agree(n in 2usize..48, seed in 0u64..5000, nb in 1usize..20) {
        let sys = generate::diag_dominant(n, seed);
        let (x_ime, _) = solve_seq(&sys).unwrap();
        let x_lu = gesv(&sys.a, &sys.b, nb).unwrap();
        for (a, b) in x_ime.iter().zip(&x_lu) {
            prop_assert!((a - b).abs() < 1e-8, "{} vs {}", a, b);
        }
    }

    /// LU block size never changes the answer.
    #[test]
    fn lu_block_size_invariance(n in 2usize..40, seed in 0u64..1000, nb1 in 1usize..16, nb2 in 16usize..70) {
        let sys = generate::circuit_network(n, seed);
        let x1 = gesv(&sys.a, &sys.b, nb1).unwrap();
        let x2 = gesv(&sys.a, &sys.b, nb2).unwrap();
        for (a, b) in x1.iter().zip(&x2) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    /// The linear-system file format round-trips bit-exactly.
    #[test]
    fn system_file_roundtrip(n in 1usize..24, seed in 0u64..5000) {
        let sys = generate::diag_dominant(n, seed);
        let back = io::from_str(&io::to_string(&sys)).unwrap();
        prop_assert_eq!(back.a, sys.a);
        prop_assert_eq!(back.b, sys.b);
    }

    /// Block-cyclic index algebra: numroc partitions exactly, g2l/l2g
    /// invert each other, local indices are dense.
    #[test]
    fn block_cyclic_algebra(n in 1usize..300, nb in 1usize..32, p in 1usize..12) {
        let total: usize = (0..p).map(|i| numroc(n, nb, i, p)).sum();
        prop_assert_eq!(total, n);
        for g in (0..n).step_by(7) {
            let o = owner(g, nb, p);
            prop_assert!(o < p);
            prop_assert_eq!(l2g(g2l(g, nb, p), nb, o, p), g);
        }
    }

    /// Placement invariants for every layout: no core is shared, socket
    /// loads match the layout, node count divides exactly.
    #[test]
    fn placement_invariants(nodes_wanted in 1usize..10, cps in 2usize..8) {
        let node = NodeSpec::test_node(cps);
        for layout in LoadLayout::all() {
            let rpn = layout.ranks_per_node(&node);
            let ranks = rpn * nodes_wanted;
            let p = Placement::layout(&node, ranks, layout).unwrap();
            prop_assert_eq!(p.nodes_used(), nodes_wanted);
            let mut seen = std::collections::HashSet::new();
            for r in 0..ranks {
                prop_assert!(seen.insert(p.core_of(r)), "core shared");
            }
            // Socket population on node 0 matches the layout.
            let (s0, s1) = layout.per_socket(&node);
            let on0 = (0..ranks)
                .filter(|&r| p.node_of(r) == 0 && p.core_of(r).socket == 0)
                .count();
            let on1 = (0..ranks)
                .filter(|&r| p.node_of(r) == 0 && p.core_of(r).socket == 1)
                .count();
            prop_assert_eq!((on0, on1), (s0, s1));
        }
    }

    /// RAPL counter arithmetic: wrap-corrected deltas recover the true energy
    /// difference for any pair of cumulative readings within one wrap.
    #[test]
    fn rapl_delta_recovers_energy(e1 in 0.0f64..500_000.0, de in 0.0f64..200_000.0) {
        use greenla::rapl::counter::{delta_joules, joules_to_count};
        let unit = 2.0f64.powi(-14);
        let c1 = joules_to_count(e1, unit);
        let c2 = joules_to_count(e1 + de, unit);
        let recovered = delta_joules(c1, c2, unit);
        prop_assert!((recovered - de).abs() <= unit * 2.0, "{} vs {}", recovered, de);
    }

    /// The power model is monotone: more active cores, more power; energy
    /// is non-decreasing in time.
    #[test]
    fn power_model_monotone(active in 0usize..24, t in 0.01f64..100.0) {
        use greenla::cluster::PowerModel;
        let pm = PowerModel::deterministic();
        let p1 = pm.pkg_power_w(24, active, 0);
        let p2 = pm.pkg_power_w(24, (active + 1).min(24), 0);
        prop_assert!(p2 >= p1);
        // idle energy scales linearly in t
        use greenla::cluster::ledger::Ledger;
        let ledger = Ledger::new(NodeSpec::marconi_a3(), 1);
        let e1 = pm.pkg_energy_j(&ledger, 0, 0, t, 0);
        let e2 = pm.pkg_energy_j(&ledger, 0, 0, t * 2.0, 0);
        prop_assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Distributed LU equals sequential LU for random shapes and grids
    /// (slower: spins up a simulated machine per case).
    #[test]
    fn pdgesv_matches_gesv(n in 8usize..40, seed in 0u64..100, ranks in 2usize..9) {
        use greenla::cluster::spec::ClusterSpec;
        use greenla::cluster::PowerModel;
        use greenla::mpi::Machine;
        use greenla::scalapack::pdgesv::pdgesv;
        let sys = generate::diag_dominant(n, seed);
        let reference = gesv(&sys.a, &sys.b, 8).unwrap();
        let spec = ClusterSpec::test_cluster(4, 4);
        let placement = Placement::packed(&spec.node, ranks).unwrap();
        let machine = Machine::new(spec, placement, PowerModel::deterministic(), seed).unwrap();
        let out = machine.run(|ctx| {
            let world = ctx.world();
            pdgesv(ctx, &world, &sys, 4).unwrap()
        });
        for x in &out.results {
            for (a, b) in x.iter().zip(&reference) {
                prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
            }
        }
    }
}
