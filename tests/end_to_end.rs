//! Workspace-level integration tests: the full stack (solver → MPI → ledger
//! → RAPL → PAPI → monitor → aggregation) exercised through the facade
//! crate, plus cross-solver consistency properties.

use greenla::cluster::placement::{LoadLayout, Placement};
use greenla::cluster::spec::ClusterSpec;
use greenla::cluster::PowerModel;
use greenla::ime::{solve_imep, ImepOptions};
use greenla::linalg::generate;
use greenla::monitor::monitoring::MonitorConfig;
use greenla::monitor::protocol::monitored_run;
use greenla::monitor::report::JobSummary;
use greenla::mpi::Machine;
use greenla::rapl::{Domain, RaplSim};
use greenla::scalapack::pdgesv::pdgesv;
use std::sync::Arc;

fn make_machine(ranks: usize, layout: LoadLayout, seed: u64) -> Machine {
    let node = greenla::cluster::spec::NodeSpec::test_node(4);
    let placement = Placement::layout(&node, ranks, layout).unwrap();
    let spec = ClusterSpec {
        node: node.clone(),
        nodes: placement.nodes_used(),
        net: greenla::cluster::Interconnect::omni_path(),
    };
    Machine::new(spec, placement, PowerModel::scaled_for(&node), seed).unwrap()
}

/// Run a monitored solve and return (summary, residual, makespan).
fn monitored_solve(
    solver: &str,
    n: usize,
    ranks: usize,
    layout: LoadLayout,
    seed: u64,
) -> (JobSummary, f64, f64) {
    let machine = make_machine(ranks, layout, seed);
    let rapl = Arc::new(RaplSim::new(
        machine.ledger(),
        machine.power().clone(),
        seed,
    ));
    let sys = generate::diag_dominant(n, 1234);
    let out = machine.run(|ctx| {
        let world = ctx.world();
        let run = monitored_run(
            ctx,
            &rapl,
            &MonitorConfig::default(),
            |ctx, _| match solver {
                "IMe" => solve_imep(ctx, &world, &sys, ImepOptions::optimized()).unwrap(),
                _ => pdgesv(ctx, &world, &sys, 16).unwrap(),
            },
        )
        .unwrap();
        (run.result, run.report)
    });
    let reports: Vec<_> = out.results.iter().filter_map(|(_, r)| r.clone()).collect();
    let residual = sys.residual(&out.results[0].0);
    (JobSummary::aggregate(&reports), residual, out.makespan)
}

#[test]
fn both_solvers_agree_and_are_exact() {
    let n = 180;
    let sys = generate::diag_dominant(n, 7);
    let machine = make_machine(16, LoadLayout::FullLoad, 1);
    let out = machine.run(|ctx| {
        let world = ctx.world();
        let x_ime = solve_imep(ctx, &world, &sys, ImepOptions::paper()).unwrap();
        let x_ge = pdgesv(ctx, &world, &sys, 16).unwrap();
        (x_ime, x_ge)
    });
    let (x_ime, x_ge) = &out.results[0];
    assert!(sys.residual(x_ime) < 1e-12);
    assert!(sys.residual(x_ge) < 1e-12);
    for (a, b) in x_ime.iter().zip(x_ge) {
        assert!((a - b).abs() < 1e-9, "solvers disagree: {a} vs {b}");
    }
}

#[test]
fn monitored_energy_is_plausible_and_consistent() {
    let (summary, residual, makespan) = monitored_solve("IMe", 160, 16, LoadLayout::FullLoad, 3);
    assert!(residual < 1e-12);
    assert_eq!(summary.nodes, 2);
    // Energy consistency: total = pkg + dram, duration ≈ makespan.
    assert!((summary.total_energy_j - summary.pkg_energy_j - summary.dram_energy_j).abs() < 1e-9);
    assert!(summary.duration_s <= makespan + 1e-9);
    assert!(
        summary.duration_s > 0.5 * makespan,
        "window should cover most of the run"
    );
    // Power must sit between idle and TDP-ish bounds for 2 small sockets.
    assert!(summary.mean_power_w > 10.0 && summary.mean_power_w < 200.0);
}

#[test]
fn ime_uses_more_energy_than_scalapack_when_compute_bound() {
    // Compute-bound regime (large n per rank).
    let (ime, _, _) = monitored_solve("IMe", 640, 8, LoadLayout::FullLoad, 5);
    let (ge, _, _) = monitored_solve("ScaLAPACK", 640, 8, LoadLayout::FullLoad, 5);
    assert!(
        ime.total_energy_j > ge.total_energy_j * 1.3,
        "IMe {} J should clearly exceed ScaLAPACK {} J",
        ime.total_energy_j,
        ge.total_energy_j
    );
    // But the power gap is far smaller than the energy gap (paper §5.4).
    let energy_gap = 1.0 - ge.total_energy_j / ime.total_energy_j;
    let power_gap = 1.0 - ge.mean_power_w / ime.mean_power_w;
    assert!(power_gap.abs() < energy_gap);
}

#[test]
fn full_load_beats_half_load_for_both_solvers() {
    for solver in ["IMe", "ScaLAPACK"] {
        let (full, _, _) = monitored_solve(solver, 192, 16, LoadLayout::FullLoad, 9);
        let (half, _, _) = monitored_solve(solver, 192, 16, LoadLayout::HalfOneSocket, 9);
        assert!(
            half.total_energy_j > full.total_energy_j,
            "{solver}: half {} !> full {}",
            half.total_energy_j,
            full.total_energy_j
        );
    }
}

#[test]
fn repetitions_vary_with_seed_but_runs_are_reproducible() {
    // n large enough that the run spans many RAPL 1 ms update periods —
    // for sub-ms runs the counter quantisation dominates the seed jitter,
    // exactly as on real hardware.
    let (a, _, _) = monitored_solve("ScaLAPACK", 448, 16, LoadLayout::FullLoad, 100);
    let (b, _, _) = monitored_solve("ScaLAPACK", 448, 16, LoadLayout::FullLoad, 100);
    let (c, _, _) = monitored_solve("ScaLAPACK", 448, 16, LoadLayout::FullLoad, 101);
    assert_eq!(a, b, "same seed must reproduce bit-identically");
    assert_ne!(
        a.total_energy_j, c.total_energy_j,
        "different seeds must perturb node efficiency/power"
    );
    // ... but only mildly (the paper's node-to-node variance, not chaos).
    let ratio = a.total_energy_j / c.total_energy_j;
    assert!(
        (ratio - 1.0).abs() < 0.35,
        "ratio {ratio}: a={:?} c={:?}",
        a,
        c
    );
}

#[test]
fn papi_counters_match_external_ground_truth_meter() {
    // The paper's future work: validate PAPI numbers against an external
    // power meter. Our RaplSim exposes the un-quantised model as that
    // ground truth; the full PAPI-read path must agree closely.
    let machine = make_machine(8, LoadLayout::FullLoad, 13);
    let rapl = Arc::new(RaplSim::new(machine.ledger(), machine.power().clone(), 13));
    let rapl2 = Arc::clone(&rapl);
    let sys = generate::diag_dominant(96, 2);
    let out = machine.run(|ctx| {
        let world = ctx.world();
        let run = monitored_run(ctx, &rapl2, &MonitorConfig::default(), |ctx, _| {
            solve_imep(ctx, &world, &sys, ImepOptions::paper()).unwrap()
        })
        .unwrap();
        run.report
    });
    for report in out.results.into_iter().flatten() {
        let t0 = report.start_usec as f64 / 1e6;
        let t1 = report.end_usec as f64 / 1e6;
        for socket in 0..2 {
            let papi = report.energy_j_socket(Domain::Package, socket).unwrap();
            let meter = rapl
                .ground_truth_j(report.node, socket, Domain::Package, t1)
                .unwrap()
                - rapl
                    .ground_truth_j(report.node, socket, Domain::Package, t0)
                    .unwrap();
            assert!(
                (papi - meter).abs() < 0.05 * meter.max(1.0),
                "node {} socket {socket}: PAPI {papi} vs meter {meter}",
                report.node
            );
        }
    }
}

#[test]
fn traffic_counters_flow_to_run_output() {
    let machine = make_machine(8, LoadLayout::FullLoad, 15);
    let sys = generate::diag_dominant(64, 3);
    let out = machine.run(|ctx| {
        let world = ctx.world();
        solve_imep(ctx, &world, &sys, ImepOptions::paper()).unwrap()
    });
    let (msgs, elems) = greenla::ime::par::predict_traffic(64, 8, ImepOptions::paper());
    assert_eq!(out.traffic.msgs, msgs);
    assert_eq!(out.traffic.volume_elems(), elems);
}
