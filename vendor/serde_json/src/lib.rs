//! Offline stand-in for the `serde_json` crate (see `vendor/README.md`).
//!
//! Converts between JSON text and the vendored serde's [`Value`] tree:
//! [`to_string`] / [`to_string_pretty`] render any [`Serialize`] type,
//! [`from_str`] parses into any [`Deserialize`] type. Object key order is
//! preserved on both paths, so output is deterministic. Non-finite floats
//! serialise as `null` (upstream behaviour) and parse back as NaN.

use serde::{Deserialize, Serialize};

pub use serde::{Error, Value};

/// Serialise to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialise to pretty JSON (2-space indent, like upstream).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Convert any serialisable type into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Parse JSON text into any deserialisable type (including [`Value`]).
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                // `{}` on f64 is shortest round-trip; force a `.0` on
                // integral values so the token re-parses as a float.
                let s = n.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                });
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Probe {
        label: String,
        xs: Vec<f64>,
        count: u64,
        flag: Option<bool>,
    }

    #[test]
    fn text_round_trip_compact_and_pretty() {
        let probe = Probe {
            label: "α β \"quoted\"\n".into(),
            xs: vec![1.0, -0.5, 3.25e9],
            count: u64::MAX,
            flag: None,
        };
        for text in [
            to_string(&probe).unwrap(),
            to_string_pretty(&probe).unwrap(),
        ] {
            let back: Probe = from_str(&text).unwrap();
            assert_eq!(back, probe);
        }
    }

    #[test]
    fn pretty_output_is_indented_and_stable() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::U64(1)]))]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"a\": [\n    1\n  ]\n}");
        assert_eq!(text, to_string_pretty(&v).unwrap());
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        let text = to_string(&vec![1.0f64]).unwrap();
        assert_eq!(text, "[1.0]");
        match from_str::<Value>(&text).unwrap() {
            Value::Array(items) => assert_eq!(items, vec![Value::F64(1.0)]),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn parses_escapes_and_rejects_garbage() {
        let v: Value = from_str(r#""aé😀\t""#).unwrap();
        assert_eq!(v, Value::Str("aé😀\t".into()));
        assert!(from_str::<Value>("{\"a\":1,}").is_err());
        assert!(from_str::<Value>("[1 2]").is_err());
        assert!(from_str::<Value>("true false").is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }
}
