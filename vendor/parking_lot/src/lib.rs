//! Offline stand-in for the `parking_lot` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses — [`Mutex`] and [`Condvar`]
//! with `parking_lot`'s poison-free API — as thin wrappers over
//! `std::sync`. Poisoned std locks are recovered transparently: the
//! simulated MPI runtime handles rank panics through its own registry
//! poisoning protocol, so lock poisoning carries no extra information.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// Mutual exclusion primitive (`parking_lot::Mutex` API subset).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    /// `Option` so [`Condvar::wait_for`] can temporarily take the inner
    /// std guard by value (std's wait API consumes and returns it).
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Outcome of a timed wait (`parking_lot::WaitTimeoutResult` subset).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable usable with [`Mutex`] (`parking_lot::Condvar` subset).
#[derive(Default, Debug)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Block until notified (no timeout). The guard is re-acquired in
    /// place, matching `parking_lot`'s `&mut` guard signature. Subject to
    /// spurious wakeups like any condvar — callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Block until notified or `timeout` elapses. The guard is re-acquired
    /// in place, matching `parking_lot`'s `&mut` guard signature.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken during wait");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        assert_eq!(*m.lock(), 0); // parking_lot semantics: no poisoning
    }

    #[test]
    fn wait_wakes_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
            *g
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        assert!(h.join().unwrap());
    }

    #[test]
    fn wait_for_times_out_and_wakes() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
        assert!(!*g);
    }
}
