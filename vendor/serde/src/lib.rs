//! Offline stand-in for the `serde` crate (see `vendor/README.md`).
//!
//! Instead of upstream's visitor architecture, serialisation goes through
//! an owned [`Value`] tree: [`Serialize`] renders a type into a `Value`,
//! [`Deserialize`] rebuilds the type from one. `serde_json` (also
//! vendored) converts between `Value` and JSON text. The derive macros in
//! the vendored `serde_derive` target this same surface, so
//! `#[derive(Serialize, Deserialize)]` works unchanged for the shapes the
//! workspace uses (named-field structs, unit/struct-variant enums,
//! `#[serde(default = "path")]`).

// Lets the derive-generated `serde::...` paths resolve inside this crate's
// own tests.
extern crate self as serde;

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Serialisation/deserialisation error: a plain message.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A JSON-shaped data tree (`serde_json::Value` analogue).
///
/// Objects keep insertion order in a `Vec` so serialised output is stable,
/// which the golden-file tests rely on.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric coercion: any of the three numeric variants as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(n) => Some(*n as f64),
            Value::U64(n) => Some(*n as f64),
            Value::F64(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::I64(n) => u64::try_from(*n).ok(),
            Value::U64(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Value to use when a struct field is missing from the input object.
    /// `None` means the field is required; `Option<T>` overrides this to
    /// tolerate absence (matching upstream's behaviour for optional
    /// fields under `serde_json`).
    fn absent() -> Option<Self> {
        None
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected boolean"))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|n| <$t>::try_from(n).ok())
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // serde_json writes non-finite floats as null; accept the
            // round trip back.
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| Error::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|n| n as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of {N} elements, got {got}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn absent() -> Option<Self> {
        Some(None)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::custom("expected 2-element array")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Nested {
        xs: Vec<f64>,
        pair: (usize, usize),
        fixed: [f64; 2],
        opt: Option<String>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Mixed {
        Unit,
        Carrying { a: u64, b: bool },
    }

    fn round_trip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(v: &T) {
        let back = T::from_value(&v.to_value()).expect("round trip");
        assert_eq!(&back, v);
    }

    #[test]
    fn derived_struct_round_trips() {
        round_trip(&Nested {
            xs: vec![1.5, -2.0],
            pair: (3, 4),
            fixed: [0.25, 0.5],
            opt: Some("hi".into()),
        });
    }

    #[test]
    fn derived_enum_round_trips() {
        round_trip(&Mixed::Unit);
        round_trip(&Mixed::Carrying { a: 9, b: true });
        assert_eq!(Mixed::Unit.to_value(), Value::Str("Unit".into()));
    }

    #[test]
    fn optional_field_tolerates_absence() {
        let v = Value::Object(vec![
            ("xs".into(), Value::Array(vec![])),
            (
                "pair".into(),
                Value::Array(vec![Value::U64(1), Value::U64(2)]),
            ),
            (
                "fixed".into(),
                Value::Array(vec![Value::F64(0.0), Value::F64(1.0)]),
            ),
        ]);
        let nested = Nested::from_value(&v).expect("missing `opt` is fine");
        assert_eq!(nested.opt, None);
        assert!(Nested::from_value(&Value::Object(vec![])).is_err());
    }
}
