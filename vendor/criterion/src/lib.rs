//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Keeps the workspace's bench targets compiling and runnable without the
//! real statistical harness: each benchmark runs a short warm-up plus a
//! fixed number of timed passes and prints the mean wall-clock time per
//! iteration (with throughput when configured). No outlier rejection, no
//! HTML reports — `cargo bench` output is indicative, not rigorous.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Passes timed per benchmark (the real crate resamples adaptively).
const TIMED_PASSES: u64 = 5;

/// Drives one benchmark's closure (`criterion::Bencher` subset).
pub struct Bencher {
    iters: u64,
    elapsed_s: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_s = start.elapsed().as_secs_f64();
    }
}

/// Benchmark identifier (`criterion::BenchmarkId` subset).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Throughput annotation (`criterion::Throughput` subset).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level driver (`criterion::Criterion` subset).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, f: F) {
        run_benchmark("", &id.into().label, None, f);
    }
}

/// A named group of related benchmarks (`criterion::BenchmarkGroup` subset).
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's pass count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_benchmark(&self.name, &id.into().label, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&self.name, &id.label, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    group: &str,
    label: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let full = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    // Warm-up pass, untimed.
    let mut bencher = Bencher {
        iters: 1,
        elapsed_s: 0.0,
    };
    f(&mut bencher);
    let mut total_s = 0.0;
    let mut total_iters = 0u64;
    for _ in 0..TIMED_PASSES {
        bencher.elapsed_s = 0.0;
        f(&mut bencher);
        total_s += bencher.elapsed_s;
        total_iters += bencher.iters;
    }
    let per_iter_s = if total_iters > 0 {
        total_s / total_iters as f64
    } else {
        0.0
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter_s > 0.0 => {
            format!("  {:.3e} elem/s", n as f64 / per_iter_s)
        }
        Some(Throughput::Bytes(n)) if per_iter_s > 0.0 => {
            format!("  {:.3e} B/s", n as f64 / per_iter_s)
        }
        _ => String::new(),
    };
    println!("bench {full}: {}{rate}", format_duration(per_iter_s));
}

fn format_duration(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// `criterion_group!(name, target, ...)` — the plain form only.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// `criterion_main!(group, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(10);
        g.throughput(Throughput::Elements(4));
        let mut ran = 0u32;
        g.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4][..], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>());
            ran += 1;
        });
        g.finish();
        // Warm-up + timed passes.
        assert_eq!(ran, 1 + TIMED_PASSES as u32);
    }

    #[test]
    fn macros_compose_into_a_main() {
        fn bench_nothing(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1 + 1));
        }
        criterion_group!(benches, bench_nothing);
        benches();
    }
}
