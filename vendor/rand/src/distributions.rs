//! Uniform distributions (`rand::distributions` subset).

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Map a `u64` to `f64` in `[0, 1)` using the high 53 bits.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// A distribution sampling values of `T` (`rand::distributions::Distribution`).
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over ranges.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Sample uniformly from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Sample uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        // Measure-zero distinction from the half-open case.
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty sample range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty sample range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u32, u64, usize, i32, i64, isize);

/// Ranges that can drive a single uniform draw (`rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Uniform distribution over a range (`rand::distributions::Uniform`).
#[derive(Clone, Copy, Debug)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl<T: SampleUniform> Uniform<T> {
    /// Uniform over `[lo, hi)`.
    pub fn new(lo: T, hi: T) -> Self {
        Self {
            lo,
            hi,
            inclusive: false,
        }
    }

    /// Uniform over `[lo, hi]`.
    pub fn new_inclusive(lo: T, hi: T) -> Self {
        Self {
            lo,
            hi,
            inclusive: true,
        }
    }
}

impl<T: SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        if self.inclusive {
            T::sample_inclusive(self.lo, self.hi, rng)
        } else {
            T::sample_half_open(self.lo, self.hi, rng)
        }
    }
}
