//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the trait surface the workspace uses — [`RngCore`], [`Rng`],
//! [`SeedableRng`] and `distributions::{Distribution, Uniform}` — with the
//! same determinism contract as upstream: identical seeds yield identical
//! streams, forever. The bit streams are *not* upstream-compatible; every
//! consumer in this workspace only relies on per-seed determinism, never
//! on specific draws.

pub mod distributions;

pub use distributions::{Distribution, Uniform};

/// Core random-number source (`rand_core::RngCore` subset).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Fixed-size seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a 64-bit seed into `Seed` bytes via SplitMix64 (the same
    /// construction upstream uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience methods over any [`RngCore`] (`rand::Rng` subset).
pub trait Rng: RngCore {
    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::SampleUniform,
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        distributions::unit_f64(self.next_u64())
    }

    /// Uniform `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: usize = rng.gen_range(0..13);
            assert!(u < 13);
            let i: u64 = rng.gen_range(5..=9);
            assert!((5..=9).contains(&i));
        }
    }

    #[test]
    fn fill_bytes_covers_ragged_lengths() {
        let mut rng = Counter(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
