//! Offline stand-in for the `crossbeam-channel` crate (see
//! `vendor/README.md`).
//!
//! The workspace only uses unbounded MPSC channels with
//! `send`/`recv`/`recv_timeout`/`try_recv`, which `std::sync::mpsc`
//! provides under identical names and semantics (std's `Sender` has been
//! `Sync` since Rust 1.72, so sharing `Arc<Vec<Sender<_>>>` across rank
//! threads works exactly as with crossbeam).

pub use std::sync::mpsc::{Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError};

/// Create an unbounded channel (`crossbeam_channel::unbounded` API).
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    std::sync::mpsc::channel()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn roundtrip_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 7);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn senders_are_shareable_across_threads() {
        let (tx, rx) = unbounded::<usize>();
        let txs = std::sync::Arc::new(vec![tx]);
        std::thread::scope(|s| {
            for i in 0..4 {
                let txs = std::sync::Arc::clone(&txs);
                s.spawn(move || txs[0].send(i).unwrap());
            }
        });
        drop(txs);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
