//! Offline stand-in for `serde_derive` (see `vendor/README.md`).
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls against the
//! vendored serde's `Value` data model. Parses the item with plain
//! `proc_macro` tokens (no `syn`/`quote`, which are unavailable offline)
//! and therefore supports exactly the shapes this workspace uses:
//!
//! * structs with named fields;
//! * enums whose variants are units or have named fields
//!   (externally-tagged encoding, like upstream's default);
//! * the `#[serde(default = "path")]` field attribute.
//!
//! Generics, tuple structs/variants and other serde attributes are
//! rejected at compile time with a clear panic message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    /// Function path from `#[serde(default = "path")]`, if present.
    default_fn: Option<String>,
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants.
    fields: Option<Vec<Field>>,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item.body {
        Body::Struct(fields) => gen_struct_serialize(&item.name, fields),
        Body::Enum(variants) => gen_enum_serialize(&item.name, variants),
    };
    src.parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item.body {
        Body::Struct(fields) => gen_struct_deserialize(&item.name, fields),
        Body::Enum(variants) => gen_enum_deserialize(&item.name, variants),
    };
    src.parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attrs_and_vis(&mut iter);
    let kind = expect_ident(&mut iter, "expected `struct` or `enum`");
    let name = expect_ident(&mut iter, "expected type name");
    let body_group = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("vendored serde_derive does not support generic types (deriving `{name}`)")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!(
                    "vendored serde_derive does not support tuple/unit structs (deriving `{name}`)"
                )
            }
            Some(_) => continue,
            None => panic!("expected a braced body deriving `{name}`"),
        }
    };
    let body = match kind.as_str() {
        "struct" => Body::Struct(parse_fields(body_group.stream(), &name)),
        "enum" => Body::Enum(parse_variants(body_group.stream(), &name)),
        other => panic!("vendored serde_derive only handles structs and enums, got `{other}`"),
    };
    Item { name, body }
}

fn skip_attrs_and_vis(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) and friends
                    }
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(
    iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
    what: &str,
) -> String {
    match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("{what}, got {other:?}"),
    }
}

/// Collect attributes preceding a field/variant, returning the
/// `default = "path"` function if a `#[serde(...)]` attribute carries one.
fn take_attrs(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> Option<String> {
    let mut default_fn = None;
    while let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() != '#' {
            break;
        }
        iter.next();
        let Some(TokenTree::Group(attr)) = iter.next() else {
            panic!("`#` must be followed by a bracketed attribute")
        };
        let mut inner = attr.stream().into_iter();
        match inner.next() {
            Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {
                let Some(TokenTree::Group(args)) = inner.next() else {
                    panic!("expected `#[serde(...)]` arguments")
                };
                default_fn = parse_serde_attr(args.stream());
            }
            _ => {} // doc comments and other attributes: ignore
        }
    }
    default_fn
}

/// Parse the inside of `#[serde(...)]`. Only `default = "path"` is
/// understood; anything else is rejected so drift is loud, not silent.
fn parse_serde_attr(stream: TokenStream) -> Option<String> {
    let mut iter = stream.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {}
        other => panic!(
            "vendored serde_derive only supports `#[serde(default = \"path\")]`, got {other:?}"
        ),
    }
    match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
        other => panic!("expected `=` in `#[serde(default = ...)]`, got {other:?}"),
    }
    match iter.next() {
        Some(TokenTree::Literal(lit)) => {
            let s = lit.to_string();
            Some(s.trim_matches('"').to_string())
        }
        other => panic!("expected a string literal in `#[serde(default = ...)]`, got {other:?}"),
    }
}

fn parse_fields(stream: TokenStream, ty: &str) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        if iter.peek().is_none() {
            break;
        }
        let default_fn = take_attrs(&mut iter);
        // Visibility.
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
        let name = expect_ident(&mut iter, &format!("expected field name in `{ty}`"));
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{ty}::{name}`, got {other:?}"),
        }
        // Skip the type: commas nested in <...> must not terminate the
        // field, so track angle-bracket depth (parens/brackets/braces are
        // already nested groups at the token level).
        let mut angle_depth = 0i32;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    iter.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    iter.next();
                    break;
                }
                Some(_) => {
                    iter.next();
                }
                None => break,
            }
        }
        fields.push(Field { name, default_fn });
    }
    fields
}

fn parse_variants(stream: TokenStream, ty: &str) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        if iter.peek().is_none() {
            break;
        }
        take_attrs(&mut iter);
        let name = expect_ident(&mut iter, &format!("expected variant name in `{ty}`"));
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                iter.next();
                Some(parse_fields(inner, ty))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("vendored serde_derive does not support tuple variants (`{ty}::{name}`)")
            }
            _ => None,
        };
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            iter.next();
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// Expression serialising named fields reachable as `{access}name` into a
/// `serde::Value::Object`.
fn fields_to_object(fields: &[Field], access: &str) -> String {
    let mut src = String::from("{ let mut __fields: Vec<(String, serde::Value)> = Vec::new();\n");
    for f in fields {
        let n = &f.name;
        src.push_str(&format!(
            "__fields.push((\"{n}\".to_string(), serde::Serialize::to_value(&{access}{n})));\n"
        ));
    }
    src.push_str("serde::Value::Object(__fields) }");
    src
}

/// Expression deserialising named fields out of `__pairs`
/// (`&[(String, serde::Value)]`) into a `Name { ... }` literal.
fn object_to_fields(constructor: &str, fields: &[Field], ty: &str) -> String {
    let mut src = format!("{constructor} {{\n");
    for f in fields {
        let n = &f.name;
        let missing = match &f.default_fn {
            Some(path) => format!("{path}()"),
            None => format!(
                "match <_ as serde::Deserialize>::absent() {{ Some(__d) => __d, None => return Err(serde::Error::custom(\"missing field `{n}` in `{ty}`\")) }}"
            ),
        };
        src.push_str(&format!(
            "{n}: match __pairs.iter().find(|(__k, _)| __k.as_str() == \"{n}\") {{ Some((_, __fv)) => serde::Deserialize::from_value(__fv)?, None => {missing} }},\n"
        ));
    }
    src.push('}');
    src
}

fn gen_struct_serialize(name: &str, fields: &[Field]) -> String {
    let body = fields_to_object(fields, "self.");
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{ {body} }}\n\
         }}\n"
    )
}

fn gen_struct_deserialize(name: &str, fields: &[Field]) -> String {
    let build = object_to_fields("Self", fields, name);
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(__v: &serde::Value) -> std::result::Result<Self, serde::Error> {{\n\
         let __pairs = match __v {{ serde::Value::Object(__p) => __p, _ => return Err(serde::Error::custom(\"expected object for `{name}`\")) }};\n\
         Ok({build})\n\
         }}\n\
         }}\n"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            None => arms.push_str(&format!(
                "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
            )),
            Some(fields) => {
                let bindings: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let pat = bindings.join(", ");
                let obj = fields_to_object(fields, "*");
                arms.push_str(&format!(
                    "{name}::{vn} {{ {pat} }} => serde::Value::Object(vec![(\"{vn}\".to_string(), {obj})]),\n"
                ));
            }
        }
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
         fn to_value(&self) -> serde::Value {{ match self {{ {arms} }} }}\n\
         }}\n"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            None => unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n")),
            Some(fields) => {
                let build = object_to_fields(&format!("{name}::{vn}"), fields, name);
                tagged_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                     let __pairs = match __inner {{ serde::Value::Object(__p) => __p, _ => return Err(serde::Error::custom(\"expected object payload for `{name}::{vn}`\")) }};\n\
                     Ok({build})\n\
                     }}\n"
                ));
            }
        }
    }
    format!(
        "impl serde::Deserialize for {name} {{\n\
         fn from_value(__v: &serde::Value) -> std::result::Result<Self, serde::Error> {{\n\
         match __v {{\n\
         serde::Value::Str(__s) => match __s.as_str() {{\n\
         {unit_arms}\
         __other => Err(serde::Error::custom(format!(\"unknown `{name}` variant `{{__other}}`\"))),\n\
         }},\n\
         serde::Value::Object(__tagged) if __tagged.len() == 1 => {{\n\
         let (__tag, __inner) = &__tagged[0];\n\
         match __tag.as_str() {{\n\
         {tagged_arms}\
         __other => Err(serde::Error::custom(format!(\"unknown `{name}` variant `{{__other}}`\"))),\n\
         }}\n\
         }},\n\
         _ => Err(serde::Error::custom(\"expected string or single-key object for `{name}`\")),\n\
         }}\n\
         }}\n\
         }}\n"
    )
}
