//! Offline stand-in for the `rand_chacha` crate (see `vendor/README.md`).
//!
//! [`ChaCha8Rng`] is a genuine ChaCha keystream generator (8 rounds, RFC
//! 8439 quarter-round) driven through the vendored `rand` traits. The
//! stream is deterministic per seed and statistically strong; it is not
//! bit-compatible with upstream `rand_chacha` (the workspace only relies
//! on per-seed determinism).

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// ChaCha with 8 rounds (`rand_chacha::ChaCha8Rng` API subset).
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key (8 words) retained to rebuild the block input per counter.
    key: [u32; 8],
    counter: u64,
    block: [u32; 16],
    /// Next unread word in `block`; 16 = exhausted.
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce fixed at zero: one stream per key.
        let input = state;
        for _ in 0..ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input) {
            *out = out.wrapping_add(inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn uniform_f64_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn keystream_words_change_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
